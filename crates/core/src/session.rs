//! The full 360° telephony session.
//!
//! Wires together everything the paper's prototype runs (Fig. 7):
//!
//! ```text
//! sender:  viewer-ROI knowledge ─▶ compression policy ─▶ encoder
//!              ▲                                             │ frames
//!              │ feedback path                               ▼
//!              │ (ROI, M, RTCP,              packetizer ─▶ pacer (R_rtp)
//!              │  REMB, NACK, PLI)                           │ packets
//!              │                                             ▼
//! client:  reassembler ◀─ downstream pipe ◀─ LTE uplink / wireline
//!              │ frames                          │ diag (B, TBS) ─▶ FBCC
//!              ▼
//!          render + measure (delay, ROI PSNR, M) ─▶ feedback path
//! ```
//!
//! The session advances one LTE subframe (1 ms) at a time; every component
//! is polled explicitly, so a whole run is a deterministic function of its
//! [`SessionConfig`].
//!
//! ### Display model
//! A delivered frame's *user-perceived* ROI quality is the encoded ROI
//! PSNR capped by a staleness term: in an interactive scene, a frame that
//! arrives very late shows outdated content, so the displayed quality
//! decays with delay beyond ~450 ms; an abandoned frame leaves stale
//! content on screen and is scored at `STALE_PSNR_DB`. This reproduces the
//! coupling between congestion and measured quality in the paper's §6
//! results (quality and delay are measured on the same received stream).

use crate::adaptive::{AdaptiveCompression, RoiMismatchMonitor};
use crate::baselines::{ConduitCompression, PyramidCompression};
use crate::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use crate::fbcc::FbccConfig;
use crate::occ::OccConfig;
use crate::policy::CompressionPolicy;
use crate::predictive::PredictiveCompression;
use crate::rate::{FbccRate, GccRate, OccRate, RateController};
use crate::report::SessionReport;
use crate::tiling::{GhoshCompression, PanoCompression};
use poi360_lte::cell::{Cell, UeId};
use poi360_lte::uplink::{CellUplink, SubframeOutcome};
use poi360_net::packet::Packet;
use poi360_net::pipe::{DelayPipe, PipeConfig};
use poi360_net::pool::BufPool;
use poi360_net::wireline::{WirelineConfig, WirelineLink};
use poi360_sim::fault::{FaultPlan, FaultTimeline};
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;
use poi360_transport::gcc::{GccReceiver, Remb};
use poi360_transport::pacer::Pacer;
use poi360_transport::rtcp::ReceiverStats;
use poi360_transport::rtp::{Packetizer, Reassembler};
use poi360_video::content::ContentModel;
use poi360_video::encoder::{EncodedFrame, Encoder};
use poi360_video::rd::RdModel;
use poi360_video::roi::Roi;
use poi360_viewport::motion::{HeadMotion, MotionConfig};
use std::collections::BTreeMap;

/// PSNR assigned to a frame that never displays (stale content freezes on
/// screen).
pub const STALE_PSNR_DB: f64 = 12.0;

/// Delay beyond which displayed quality starts to decay (the scene has
/// moved on).
const STALENESS_ONSET: f64 = 0.45; // seconds

/// Quality decay per second of excess delay, dB.
const STALENESS_SLOPE: f64 = 35.0;

/// Oldest original send time a NACK can still resurrect (WebRTC's
/// time-limited RTX history). The receiver abandons an incomplete frame
/// 1 s after its first packet, so older retransmissions cannot help.
const RTX_MAX_AGE: SimDuration = SimDuration::from_millis(500);

/// Messages on the client → sender feedback path (WebRTC data channel +
/// RTCP).
enum FeedbackMsg {
    /// Periodic ROI + averaged mismatch-time feedback (every frame interval).
    RoiAndM { roi: Roi, m: Option<SimDuration> },
    /// RTCP receiver report with RTT echo information.
    ReceiverReport { loss: f64, latest_departed_at: SimTime, hold: SimDuration },
    /// GCC receiver-estimated max bitrate.
    Remb(Remb),
    /// Retransmission request.
    Nack(u64),
    /// Picture loss indication: request a keyframe.
    Pli,
}

/// Access network (the segment FBCC can see into).
// One Access exists per session and lives as long as it, so the size skew
// between variants costs nothing; boxing the uplink would only add a
// pointer chase to the per-subframe hot path.
#[allow(clippy::large_enum_variant)]
enum Access {
    Cellular(CellUplink<Packet>),
    Wireline(WirelineLink<Packet>),
    /// A UE slot inside a shared multi-UE cell. The session holds no
    /// handle to the cell — the driver ([`crate::multicell::MultiCell`] /
    /// [`crate::multicell::MultiGrid`]) owns the cells outright and lends
    /// `&mut Cell` into [`Session::multi_begin`] /
    /// [`Session::multi_complete`], which keeps the whole session `Send`
    /// so a shard can carry it to a worker thread.
    SharedCell {
        ue: UeId,
    },
}

/// One telephony session.
pub struct Session {
    cfg: SessionConfig,
    now: SimTime,
    rd: RdModel,

    // ---- sender ----
    content: ContentModel,
    encoder: Encoder,
    policy: Box<dyn CompressionPolicy>,
    rate: Box<dyn RateController>,
    packetizer: Packetizer,
    pacer: Pacer,
    sender_roi: Roi,
    next_frame_at: SimTime,
    /// Frame metadata the client "decodes" (matrix, tiles) keyed by number.
    sent_frames: BTreeMap<u64, EncodedFrame>,
    /// Released packets retained for NACK retransmission.
    sent_packets: BTreeMap<u64, Packet>,

    // ---- network ----
    access: Access,
    downstream: DelayPipe<Packet>,
    feedback: DelayPipe<FeedbackMsg>,
    /// Path-level fault plan (feedback loss, wireline spikes); access-level
    /// faults live inside the uplink/cell.
    path_faults: FaultTimeline,

    // ---- client ----
    viewer: HeadMotion,
    reassembler: Reassembler,
    gcc_rx: GccReceiver,
    rstats: ReceiverStats,
    monitor: RoiMismatchMonitor,
    next_roi_feedback_at: SimTime,
    next_rr_at: SimTime,
    last_arrival: Option<(SimTime, SimTime)>, // (pkt departed_at, arrival)

    // ---- hot-path staging (DESIGN.md §10) ----
    /// Strict free-list for the pacer's per-tick release buffer; leased at
    /// the top of phase 4 and recycled at its end, so a leak panics.
    pacer_pool: BufPool<Packet>,
    /// Downstream arrival staging, cleared (capacity kept) every tick.
    arrivals: Vec<(SimTime, Packet)>,
    /// Feedback arrival staging, cleared (capacity kept) every tick.
    fb_arrivals: Vec<(SimTime, FeedbackMsg)>,

    // ---- measurement ----
    /// Probe handle every layer reports through; the report's series are
    /// derived from its channels in [`Session::finish`].
    recorder: Recorder,
    /// Shared-cell sessions cannot reach into the driver-owned cell at
    /// report time, so the driver injects the UE's access-drop total here
    /// before calling [`Session::into_report`].
    shared_dropped: u64,
    report: SessionReport,
    rx_bytes_this_second: u64,
    current_second: u64,
}

impl Session {
    /// Build a session from its configuration, with no trace sink attached.
    pub fn new(cfg: SessionConfig) -> Self {
        Session::traced(cfg, Recorder::null())
    }

    /// Build a session whose probes report through `recorder` (normally one
    /// created with [`Recorder::to_sink`]; [`Session::new`] passes a null
    /// recorder). The recorder must be exclusive to this session.
    pub fn traced(cfg: SessionConfig, recorder: Recorder) -> Self {
        let (access, downstream_cfg, feedback_cfg) = match cfg.network {
            NetworkKind::Cellular(scenario) => (
                Access::Cellular(CellUplink::new(scenario.uplink_config(), cfg.seed)),
                PipeConfig::cellular_downstream(),
                PipeConfig::cellular_feedback(),
            ),
            NetworkKind::CellularEdge(scenario) => (
                Access::Cellular(CellUplink::new(scenario.uplink_config(), cfg.seed)),
                PipeConfig::edge_downstream(),
                PipeConfig::edge_feedback(),
            ),
            NetworkKind::Wireline => (
                Access::Wireline(WirelineLink::new(WirelineConfig::default())),
                PipeConfig::wireline_transit(),
                PipeConfig::wireline_feedback(),
            ),
        };
        Session::assemble(cfg, access, downstream_cfg, feedback_cfg, recorder)
    }

    /// Build a session whose uplink is a foreground UE inside a shared
    /// multi-UE [`Cell`]. The caller (normally
    /// [`crate::multicell::MultiCell`]) owns the cell, must have attached
    /// `ue` already, and must drive the session through
    /// [`Session::multi_begin`] / [`Session::multi_complete`] (lending the
    /// cell mutably each subframe) so the cell is stepped exactly once per
    /// subframe for all its sessions.
    pub fn with_shared_cell(cfg: SessionConfig, ue: UeId) -> Self {
        Session::with_shared_cell_traced(cfg, ue, Recorder::null())
    }

    /// [`Session::with_shared_cell`] with an explicit probe recorder.
    pub fn with_shared_cell_traced(cfg: SessionConfig, ue: UeId, recorder: Recorder) -> Self {
        Session::assemble(
            cfg,
            Access::SharedCell { ue },
            PipeConfig::cellular_downstream(),
            PipeConfig::cellular_feedback(),
            recorder,
        )
    }

    fn assemble(
        cfg: SessionConfig,
        mut access: Access,
        downstream_cfg: PipeConfig,
        feedback_cfg: PipeConfig,
        recorder: Recorder,
    ) -> Self {
        let grid = cfg.encoder.geometry.grid;
        let mut policy: Box<dyn CompressionPolicy> = match cfg.scheme {
            CompressionScheme::Poi360 => Box::new(AdaptiveCompression::new()),
            CompressionScheme::Conduit => Box::new(ConduitCompression::new()),
            CompressionScheme::Pyramid => Box::new(PyramidCompression::new()),
            CompressionScheme::Poi360Predictive => Box::new(PredictiveCompression::default()),
            CompressionScheme::FixedMode(k) => Box::new(AdaptiveCompression::fixed_mode(k)),
            CompressionScheme::Pano => Box::new(PanoCompression::new()),
            CompressionScheme::Ghosh => Box::new(GhoshCompression::new()),
        };
        let mut rate: Box<dyn RateController> = match cfg.rate_control {
            RateControlKind::Gcc => Box::new(GccRate::new(cfg.start_rate_bps)),
            RateControlKind::Fbcc => {
                Box::new(FbccRate::new(cfg.start_rate_bps, FbccConfig::default()))
            }
            RateControlKind::Occ => {
                Box::new(OccRate::new(cfg.start_rate_bps, OccConfig::default()))
            }
        };
        // Distribute the recorder to every instrumented component. Clones
        // share the same channels/sink, so the session's probes all land in
        // one place.
        policy.set_recorder(&recorder);
        rate.set_recorder(&recorder);
        let mut encoder = Encoder::new(cfg.encoder, cfg.seed);
        encoder.set_recorder(&recorder);
        let mut pacer = Pacer::new(cfg.start_rate_bps);
        pacer.set_recorder(&recorder);
        if let Access::Cellular(ul) = &mut access {
            ul.set_recorder(&recorder);
        }
        let label = cfg.label();
        Session {
            now: SimTime::ZERO,
            rd: RdModel::default(),
            content: ContentModel::new(grid, cfg.seed),
            encoder,
            policy,
            rate,
            packetizer: Packetizer::new(),
            pacer,
            sender_roi: Roi::front(&grid),
            next_frame_at: SimTime::ZERO,
            sent_frames: BTreeMap::new(),
            sent_packets: BTreeMap::new(),
            access,
            downstream: DelayPipe::new(downstream_cfg, cfg.seed ^ 0xd0),
            feedback: DelayPipe::new(feedback_cfg, cfg.seed ^ 0xfb),
            path_faults: FaultTimeline::default(),
            viewer: HeadMotion::new(cfg.user, MotionConfig::default(), cfg.seed ^ 0x9e),
            reassembler: Reassembler::new(SimDuration::from_millis(1_500)),
            gcc_rx: GccReceiver::new(cfg.start_rate_bps),
            rstats: ReceiverStats::new(),
            monitor: RoiMismatchMonitor::new(),
            next_roi_feedback_at: SimTime::ZERO,
            next_rr_at: SimTime::from_millis(100),
            last_arrival: None,
            pacer_pool: BufPool::with_slots(2),
            arrivals: Vec::new(),
            fb_arrivals: Vec::new(),
            recorder,
            shared_dropped: 0,
            report: SessionReport { label, ..Default::default() },
            rx_bytes_this_second: 0,
            current_second: 0,
            cfg,
        }
    }

    /// Build a session with a fault plan attached (no trace sink).
    pub fn faulted(cfg: SessionConfig, plan: &FaultPlan) -> Self {
        Session::faulted_traced(cfg, plan, Recorder::null())
    }

    /// [`Session::faulted`] with an explicit probe recorder.
    pub fn faulted_traced(cfg: SessionConfig, plan: &FaultPlan, recorder: Recorder) -> Self {
        let mut s = Session::traced(cfg, recorder);
        s.set_fault_plan(plan);
        s
    }

    /// Attach a fault plan to this session. Path-level kinds (feedback
    /// loss, wireline spikes) are applied at the session's pipe seams;
    /// access-level kinds are forwarded to a standalone cellular uplink.
    /// Shared-cell sessions get access faults through the cell itself
    /// ([`poi360_lte::cell::Cell::set_fault_plan`], normally via
    /// `MultiCellConfig::faults`), and wireline access has no radio to
    /// fail, so in both cases the access slice is ignored here.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.path_faults = FaultTimeline::new(plan.path_slice());
        if let Access::Cellular(ul) = &mut self.access {
            ul.set_fault_plan(plan.clone());
        }
    }

    /// The configuration this session runs.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run to completion and return the measurement record.
    pub fn run(mut self) -> SessionReport {
        let end = SimTime::ZERO + self.cfg.duration;
        while self.now < end {
            self.step();
        }
        self.finish()
    }

    /// Advance exactly one subframe (1 ms). Only valid for standalone
    /// access networks; shared-cell sessions are stepped by their
    /// [`crate::multicell::MultiCell`] driver.
    pub fn step(&mut self) {
        let client_roi = self.step_ingress(None);

        // 5. Access link service.
        let now = self.now;
        let outcome = match &mut self.access {
            Access::Cellular(ul) => Some(ul.subframe(now)),
            Access::Wireline(link) => {
                for (_, pkt) in link.poll(now) {
                    self.downstream.send(pkt, now);
                }
                None
            }
            Access::SharedCell { .. } => {
                panic!("shared-cell sessions must be driven through MultiCell")
            }
        };
        if let Some(out) = outcome {
            self.absorb_uplink(out, None);
        }

        self.step_egress(&client_roi);
    }

    /// Phases 1–4: head motion, feedback intake, encode, pacing into the
    /// access queue. Returns the client ROI sampled this subframe, which
    /// [`Session::step_egress`] needs after the uplink has been served.
    /// `shared` is the driver-lent cell for shared-cell sessions (`None`
    /// on standalone access networks).
    fn step_ingress(&mut self, mut shared: Option<&mut Cell<Packet>>) -> Roi {
        let now = self.now;

        // 1. Client head motion (sensor rate = subframe rate).
        self.viewer.step(poi360_sim::SUBFRAME);
        let client_roi = self.viewer.roi(&self.cfg.encoder.geometry.grid);
        self.monitor.on_roi_update(now, &client_roi);

        // 2. Path-level fault state, then feedback arrivals at the sender.
        if !self.path_faults.is_empty() {
            let af = self.path_faults.advance(now, &self.recorder);
            self.feedback.set_fault_state(SimDuration::ZERO, af.feedback_loss);
            self.downstream.set_fault_state(af.extra_path_delay, af.extra_path_loss);
        }
        self.feedback.tick(now);
        let mut fb = std::mem::take(&mut self.fb_arrivals);
        self.feedback.poll_into(now, &mut fb);
        for (_, msg) in fb.drain(..) {
            self.sender_handle_feedback(msg);
        }
        self.fb_arrivals = fb;

        // 3. Frame capture + encode on schedule.
        while self.now >= self.next_frame_at {
            self.sender_encode_frame();
            self.next_frame_at += self.cfg.encoder.frame_interval();
        }

        // 4. Pace packets toward the access link.
        self.pacer.set_rate_bps(self.rate.rtp_rate_bps(now));
        let mut paced = self.pacer_pool.lease();
        self.pacer.tick_into(now, &mut paced);
        for mut pkt in paced.drain(..) {
            pkt.sent_at = now; // abs-send-time: when the packet leaves the app
            self.sent_packets.insert(pkt.seq, pkt.clone());
            if self.sent_packets.len() > 4_000 {
                let oldest = *self.sent_packets.keys().next().expect("non-empty");
                self.sent_packets.remove(&oldest);
            }
            match &mut self.access {
                Access::Cellular(ul) => {
                    ul.enqueue(pkt, now);
                }
                Access::Wireline(link) => {
                    link.enqueue(pkt, now);
                }
                Access::SharedCell { ue } => {
                    let cell = shared.as_deref_mut().expect("driver lends the shared cell");
                    cell.enqueue(*ue, pkt, now);
                }
            }
        }
        self.pacer_pool.recycle(paced);

        client_roi
    }

    /// Feed one uplink subframe outcome into the session: departed packets
    /// enter the downstream path, and a closed diag epoch reaches the rate
    /// controller. Shared between the standalone cellular path and the
    /// shared-cell driver (`shared` is the driver-lent cell).
    fn absorb_uplink(
        &mut self,
        out: SubframeOutcome<Packet>,
        mut shared: Option<&mut Cell<Packet>>,
    ) {
        let now = self.now;
        let mut departed = out.departed;
        for (pkt, _) in departed.drain(..) {
            self.downstream.send(pkt, now);
        }
        // Hand the emptied shell back to the access layer so its next
        // subframe serves into it instead of allocating.
        match &mut self.access {
            Access::Cellular(ul) => ul.recycle_departed(departed),
            Access::SharedCell { .. } => shared
                .as_deref_mut()
                .expect("driver lends the shared cell")
                .recycle_departed(departed),
            Access::Wireline(_) => {}
        }
        if let Some(diag) = out.diag {
            self.recorder.gauge("uplink.fw_buffer_bytes", now, diag.last_buffer_bytes() as f64);
            self.recorder.gauge("uplink.phy_rate_bps", now, diag.mean_phy_rate_bps());
            self.rate.on_diag(&diag, now);
            match &mut self.access {
                Access::Cellular(ul) => ul.recycle_diag(diag),
                Access::SharedCell { ue } => {
                    shared.expect("driver lends the shared cell").recycle_diag(*ue, diag)
                }
                Access::Wireline(_) => {}
            }
        }
    }

    /// Phases 6–7 plus the clock advance.
    fn step_egress(&mut self, client_roi: &Roi) {
        let now = self.now;

        // 6. Deliveries at the client.
        self.downstream.tick(now);
        let mut arrivals = std::mem::take(&mut self.arrivals);
        self.downstream.poll_into(now, &mut arrivals);
        for (at, pkt) in arrivals.drain(..) {
            self.client_handle_packet(pkt, at, client_roi);
        }
        self.arrivals = arrivals;

        // 7. Client housekeeping: NACKs, abandoned frames, REMB, RR, ROI/M.
        self.client_housekeeping(client_roi);

        self.now += poi360_sim::SUBFRAME;
    }

    /// Shared-cell driver hook: run phases 1–4 (up to and including
    /// enqueueing into the lent `cell`) and hand back the sampled client
    /// ROI.
    pub(crate) fn multi_begin(&mut self, cell: &mut Cell<Packet>) -> Roi {
        debug_assert!(matches!(self.access, Access::SharedCell { .. }));
        self.step_ingress(Some(cell))
    }

    /// Shared-cell driver hook: absorb this session's slice of the cell
    /// subframe and finish the subframe (phases 6–7).
    pub(crate) fn multi_complete(
        &mut self,
        out: SubframeOutcome<Packet>,
        client_roi: &Roi,
        cell: &mut Cell<Packet>,
    ) {
        self.absorb_uplink(out, Some(cell));
        self.step_egress(client_roi);
    }

    /// Handover: repoint this shared-cell session at its UE slot in the
    /// new serving cell. The grid driver has already moved the firmware
    /// buffer via [`poi360_lte::cell::Cell::detach_foreground`] /
    /// [`poi360_lte::cell::Cell::attach_migrated`] and will lend the new
    /// cell into the driver hooks from here on.
    pub(crate) fn rehome_shared_cell(&mut self, new_ue: UeId) {
        match &mut self.access {
            Access::SharedCell { ue } => *ue = new_ue,
            _ => panic!("rehome_shared_cell on a non-shared-cell session"),
        }
    }

    /// Shared-cell driver hook: inject the UE's access-drop total (read
    /// from the driver-owned serving cell) so [`Session::into_report`] can
    /// account dropped packets without a cell handle.
    pub(crate) fn set_shared_dropped(&mut self, dropped: u64) {
        debug_assert!(matches!(self.access, Access::SharedCell { .. }));
        self.shared_dropped = dropped;
    }

    /// Consume the session and produce its report (shared-cell driver
    /// path; standalone callers use [`Session::run`]).
    pub(crate) fn into_report(self) -> SessionReport {
        self.finish()
    }

    // ---------------------------------------------------------------
    // Sender side
    // ---------------------------------------------------------------

    fn sender_handle_feedback(&mut self, msg: FeedbackMsg) {
        match msg {
            FeedbackMsg::RoiAndM { roi, m } => {
                self.sender_roi = roi;
                self.policy.on_roi_feedback(self.now, &roi);
                if let Some(m) = m {
                    self.policy.on_mismatch_feedback(self.now, m);
                }
            }
            FeedbackMsg::ReceiverReport { loss, latest_departed_at, hold } => {
                let rtt = self.now.saturating_since(latest_departed_at).saturating_sub(hold);
                self.rate.on_receiver_report(loss, rtt);
            }
            FeedbackMsg::Remb(remb) => self.rate.on_remb(remb),
            FeedbackMsg::Nack(seq) => {
                // The RTX history is time-limited (as in WebRTC): a packet
                // this old can no longer beat the receiver's abandon timer,
                // and honoring stale NACKs after an outage clears would
                // turn the backlog into a retransmission storm.
                if let Some(pkt) = self.sent_packets.get(&seq) {
                    if self.now.saturating_since(pkt.sent_at) <= RTX_MAX_AGE {
                        let mut retx = pkt.clone();
                        retx.retransmit = true;
                        self.pacer.enqueue_front(retx);
                    }
                }
            }
            FeedbackMsg::Pli => self.encoder.request_keyframe(),
        }
    }

    fn sender_encode_frame(&mut self) {
        let grid = self.cfg.encoder.geometry.grid;
        let matrix = self.policy.matrix(&grid, &self.sender_roi);
        let rv = self.rate.video_rate_bps(self.now);
        let frame = self.encoder.encode(self.now, self.sender_roi, &matrix, &self.content, rv);
        self.content.advance_frame();

        self.recorder.count("video.frame_encoded", self.now, 1);
        self.recorder.gauge("video.rate_bps", self.now, rv);
        self.recorder.gauge("pacer.rate_bps", self.now, self.rate.rtp_rate_bps(self.now));

        for pkt in self.packetizer.packetize(frame.frame_no, frame.bytes, self.now) {
            self.pacer.enqueue(pkt);
        }
        self.sent_frames.insert(frame.frame_no, frame);
        // Bound the store: anything older than ~300 frames is past the
        // abandon window anyway.
        while self.sent_frames.len() > 300 {
            let oldest = *self.sent_frames.keys().next().expect("non-empty");
            self.sent_frames.remove(&oldest);
        }
    }

    // ---------------------------------------------------------------
    // Client side
    // ---------------------------------------------------------------

    fn client_handle_packet(&mut self, pkt: Packet, at: SimTime, client_roi: &Roi) {
        self.rx_bytes_this_second += pkt.bytes as u64;
        let second = at.as_micros() / 1_000_000;
        if second > self.current_second {
            // Close the finished second(s).
            let rate = self.rx_bytes_this_second as f64 * 8.0;
            self.recorder.gauge(
                "session.throughput_bps",
                SimTime::from_secs(self.current_second + 1),
                rate,
            );
            self.rx_bytes_this_second = 0;
            self.current_second = second;
        }

        self.last_arrival = Some((pkt.sent_at, at));
        self.gcc_rx.on_packet(&pkt, at);
        self.rstats.on_packet(&pkt, at);
        if let Some(done) = self.reassembler.on_packet(&pkt, at) {
            self.client_handle_frame(done.frame_no, done.completed_at, client_roi);
        }
    }

    fn client_handle_frame(&mut self, frame_no: u64, completed_at: SimTime, client_roi: &Roi) {
        let Some(meta) = self.sent_frames.remove(&frame_no) else {
            return; // metadata already pruned: too old to score
        };
        let grid = self.cfg.encoder.geometry.grid;
        let delay = completed_at.saturating_since(meta.capture_time) + self.cfg.pipeline_delay;

        self.recorder.count("video.frame_delivered", completed_at, 1);
        self.report.freeze.record(delay);

        // User-perceived ROI quality: encoded quality in the viewer's FoV,
        // capped by staleness.
        let encoded_psnr = meta.region_psnr(
            &self.rd,
            &self.cfg.encoder.geometry,
            client_roi.fov_tiles(&grid, 1, 1),
        );
        let staleness_cap =
            55.0 - STALENESS_SLOPE * (delay.as_secs_f64() - STALENESS_ONSET).max(0.0);
        let displayed = encoded_psnr.min(staleness_cap).max(8.0);
        self.recorder.gauge("video.roi_psnr_db", completed_at, displayed);

        // Displayed compression level at the gaze tile (Fig. 12 input).
        self.recorder.gauge("video.roi_level", completed_at, meta.matrix.level(client_roi.center));

        // ROI mismatch measurement (Eq. 2) and its window.
        let m = self.monitor.on_frame(completed_at, &meta, client_roi, delay);
        self.recorder.gauge("session.mismatch_ms", completed_at, m.as_micros() as f64 / 1e3);
    }

    fn client_housekeeping(&mut self, client_roi: &Roi) {
        let now = self.now;

        // NACK generation.
        for nack in self.reassembler.poll_nacks(now, SimDuration::from_millis(100), 4) {
            self.feedback.send(FeedbackMsg::Nack(nack.seq), now);
        }

        // Abandoned frames: freeze + stale display + PLI.
        let abandoned = self.reassembler.poll_abandoned(now);
        for frame_no in abandoned {
            self.sent_frames.remove(&frame_no);
            self.recorder.count("video.frame_abandoned", now, 1);
            self.report.freeze.record_lost();
            // Chronologically safe alongside the delivered-frame samples:
            // this subframe's arrivals (at <= now) were absorbed before
            // housekeeping runs at `now`.
            self.recorder.gauge("video.roi_psnr_db", now, STALE_PSNR_DB);
            self.feedback.send(FeedbackMsg::Pli, now);
        }

        // REMB.
        if let Some(remb) = self.gcc_rx.poll_remb(now) {
            self.feedback.send(FeedbackMsg::Remb(remb), now);
        }

        // RTCP receiver reports every 100 ms.
        if now >= self.next_rr_at {
            self.next_rr_at = now + SimDuration::from_millis(100);
            let rr = self.rstats.make_report(now);
            if let Some((departed_at, arrival)) = self.last_arrival {
                self.feedback.send(
                    FeedbackMsg::ReceiverReport {
                        loss: rr.loss_fraction,
                        latest_departed_at: departed_at,
                        hold: now.saturating_since(arrival),
                    },
                    now,
                );
            }
        }

        // ROI + M feedback every frame interval.
        if now >= self.next_roi_feedback_at {
            self.next_roi_feedback_at = now + self.cfg.encoder.frame_interval();
            self.feedback
                .send(FeedbackMsg::RoiAndM { roi: *client_roi, m: self.monitor.average() }, now);
        }
    }

    /// Derive the report from the probe channels. Every series below is the
    /// channel a probe retained during the run; nothing is double-counted
    /// because the emission sites replaced the old inline pushes 1:1.
    fn finish(mut self) -> SessionReport {
        let rec = &self.recorder;
        self.report.frames_sent = rec.counter("video.frame_encoded");
        self.report.frames_delivered = rec.counter("video.frame_delivered");
        self.report.frames_lost = rec.counter("video.frame_abandoned");
        self.report.roi_psnr_db = rec.take_gauge("video.roi_psnr_db").values();
        self.report.roi_level = rec.take_gauge("video.roi_level");
        self.report.mismatch_ms = rec.take_gauge("session.mismatch_ms");
        self.report.fw_buffer = rec.take_gauge("uplink.fw_buffer_bytes");
        self.report.phy_rate = rec.take_gauge("uplink.phy_rate_bps");
        self.report.video_rate = rec.take_gauge("video.rate_bps");
        self.report.rtp_rate = rec.take_gauge("pacer.rate_bps");
        self.report.throughput = rec.take_gauge("session.throughput_bps");
        self.report.uplink_detections = self.rate.uplink_detections();
        self.report.packets_dropped = match &self.access {
            Access::Cellular(ul) => ul.dropped() + self.downstream.lost(),
            Access::Wireline(link) => link.dropped() + self.downstream.lost(),
            // Injected by the driver via `set_shared_dropped` before
            // `into_report`; the session holds no cell handle.
            Access::SharedCell { .. } => self.shared_dropped + self.downstream.lost(),
        };
        self.recorder.flush();
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_lte::scenario::Scenario;
    use poi360_viewport::motion::UserArchetype;

    fn cfg(
        scheme: CompressionScheme,
        rc: RateControlKind,
        network: NetworkKind,
        seed: u64,
    ) -> SessionConfig {
        SessionConfig {
            scheme,
            rate_control: rc,
            network,
            user: UserArchetype::EventDriven,
            duration: SimDuration::from_secs(30),
            seed,
            ..Default::default()
        }
    }

    fn cellular() -> NetworkKind {
        NetworkKind::Cellular(Scenario::baseline())
    }

    #[test]
    fn sessions_are_send() {
        // The sharded grid driver ships whole sessions to worker threads;
        // this assertion is the compile-time contract that keeps it legal.
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
    }

    #[test]
    fn poi360_cellular_session_delivers_frames() {
        let report =
            Session::new(cfg(CompressionScheme::Poi360, RateControlKind::Fbcc, cellular(), 42))
                .run();
        // 30 s at 36 FPS = 1080 frames sent.
        assert!((1_050..=1_120).contains(&report.frames_sent), "sent {}", report.frames_sent);
        let delivered_frac = report.frames_delivered as f64 / report.frames_sent as f64;
        assert!(delivered_frac > 0.9, "delivered fraction {delivered_frac}");
        assert!(!report.roi_psnr_db.is_empty());
        assert!(!report.fw_buffer.is_empty(), "cellular sessions record diag");
    }

    #[test]
    fn wireline_session_runs_clean() {
        let report = Session::new(cfg(
            CompressionScheme::Poi360,
            RateControlKind::Gcc,
            NetworkKind::Wireline,
            43,
        ))
        .run();
        assert!(report.frames_delivered > 1_000);
        assert!(report.freeze_ratio() < 0.05, "wireline freeze {}", report.freeze_ratio());
        assert!(report.fw_buffer.is_empty(), "no diag on wireline");
    }

    #[test]
    fn sessions_are_deterministic() {
        let a = Session::new(cfg(CompressionScheme::Poi360, RateControlKind::Fbcc, cellular(), 7))
            .run();
        let b = Session::new(cfg(CompressionScheme::Poi360, RateControlKind::Fbcc, cellular(), 7))
            .run();
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.frames_delivered, b.frames_delivered);
        assert_eq!(a.roi_psnr_db, b.roi_psnr_db);
        assert_eq!(a.mean_throughput_bps(), b.mean_throughput_bps());
    }

    #[test]
    fn seeds_change_outcomes() {
        let a = Session::new(cfg(CompressionScheme::Poi360, RateControlKind::Fbcc, cellular(), 1))
            .run();
        let b = Session::new(cfg(CompressionScheme::Poi360, RateControlKind::Fbcc, cellular(), 2))
            .run();
        assert_ne!(a.roi_psnr_db, b.roi_psnr_db);
    }

    #[test]
    fn fbcc_freezes_less_than_gcc_under_stress() {
        // The paper's Fig. 16a core claim, pooled over a few seeds: FBCC's
        // local congestion detection keeps the freeze ratio below stock
        // GCC's on the same congested cell.
        let mut fbcc_frozen = 0.0;
        let mut gcc_frozen = 0.0;
        for seed in [11u64, 12, 13] {
            fbcc_frozen += Session::new(cfg(
                CompressionScheme::Poi360,
                RateControlKind::Fbcc,
                cellular(),
                seed,
            ))
            .run()
            .freeze_ratio();
            gcc_frozen += Session::new(cfg(
                CompressionScheme::Poi360,
                RateControlKind::Gcc,
                cellular(),
                seed,
            ))
            .run()
            .freeze_ratio();
        }
        assert!(fbcc_frozen <= gcc_frozen, "fbcc {fbcc_frozen} vs gcc {gcc_frozen}");
    }

    #[test]
    fn mismatch_feedback_flows() {
        let report =
            Session::new(cfg(CompressionScheme::Poi360, RateControlKind::Fbcc, cellular(), 21))
                .run();
        assert!(!report.mismatch_ms.is_empty());
        // M is at least the frame delay, so its mean is positive.
        assert!(report.mismatch_ms.mean().unwrap() > 0.0);
    }

    #[test]
    fn pyramid_is_bitrate_starved_on_cellular() {
        // Pyramid needs ~43 % of 12.65 Mbps ≈ 5.4 Mbps for full quality —
        // far above the cell's capacity — so its delivered quality must
        // fall below POI360's, which adapts its spatial load.
        let mut pyr = 0.0;
        let mut poi = 0.0;
        for seed in [31u64, 32, 33] {
            pyr += Session::new(cfg(
                CompressionScheme::Pyramid,
                RateControlKind::Gcc,
                cellular(),
                seed,
            ))
            .run()
            .mean_psnr_db();
            poi += Session::new(cfg(
                CompressionScheme::Poi360,
                RateControlKind::Gcc,
                cellular(),
                seed,
            ))
            .run()
            .mean_psnr_db();
        }
        assert!(pyr < poi, "pyramid {pyr} vs poi {poi}");
    }

    #[test]
    fn throughput_is_recorded_and_sane() {
        let report =
            Session::new(cfg(CompressionScheme::Poi360, RateControlKind::Fbcc, cellular(), 51))
                .run();
        let tput = report.mean_throughput_bps();
        assert!((0.3e6..6.0e6).contains(&tput), "throughput {tput}");
    }

    #[test]
    fn predictive_scheme_runs_end_to_end() {
        let report = Session::new(cfg(
            CompressionScheme::Poi360Predictive,
            RateControlKind::Fbcc,
            cellular(),
            61,
        ))
        .run();
        assert!(report.frames_delivered > 900, "delivered {}", report.frames_delivered);
        assert!(report.mean_psnr_db() > 20.0);
    }

    #[test]
    fn fixed_mode_schemes_run_and_differ() {
        let f1 = Session::new(cfg(
            CompressionScheme::FixedMode(1),
            RateControlKind::Fbcc,
            cellular(),
            62,
        ))
        .run();
        let f8 = Session::new(cfg(
            CompressionScheme::FixedMode(8),
            RateControlKind::Fbcc,
            cellular(),
            62,
        ))
        .run();
        // The conservative mode needs far more bitrate, so on the same cell
        // it must deliver lower quality.
        assert!(
            f8.mean_psnr_db() < f1.mean_psnr_db(),
            "F8 {} vs F1 {}",
            f8.mean_psnr_db(),
            f1.mean_psnr_db()
        );
    }

    #[test]
    fn edge_relay_shortens_the_loop() {
        let edge = Session::new(cfg(
            CompressionScheme::Poi360,
            RateControlKind::Fbcc,
            NetworkKind::CellularEdge(Scenario::baseline()),
            63,
        ))
        .run();
        let internet =
            Session::new(cfg(CompressionScheme::Poi360, RateControlKind::Fbcc, cellular(), 63))
                .run();
        assert!(
            edge.median_delay_ms() < internet.median_delay_ms(),
            "edge {} vs internet {}",
            edge.median_delay_ms(),
            internet.median_delay_ms()
        );
        // Shorter feedback loop => smaller measured ROI mismatch time.
        assert!(
            edge.mismatch_ms.mean().unwrap() < internet.mismatch_ms.mean().unwrap(),
            "edge M {} vs internet M {}",
            edge.mismatch_ms.mean().unwrap(),
            internet.mismatch_ms.mean().unwrap()
        );
    }
}
