//! Predictive spatial compression — the §8 extension, implemented so the
//! paper's skepticism can be measured.
//!
//! The paper argues motion-based ROI prediction cannot rescue rigid
//! compression at LTE latencies ("the head position after 120 ms is
//! unpredictable, which is below the typical video latency over LTE").
//! This policy puts that to the test: it runs POI360's adaptive mode
//! selection, but centers the compression matrix on the *predicted* ROI —
//! a constant-velocity extrapolation of the viewer's feedback — rather
//! than the last reported one. The `ablation prediction-policy` harness
//! compares it against stock POI360 per user archetype: prediction helps
//! the smooth panner (whose motion is extrapolable) and does little or
//! harm for saccadic viewers, exactly the trade the paper predicts.

use crate::adaptive::AdaptiveCompression;
use crate::policy::CompressionPolicy;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_video::compression::CompressionMatrix;
use poi360_video::frame::TileGrid;
use poi360_video::roi::Roi;
use poi360_viewport::predictor::LinearPredictor;

/// POI360 with sender-side ROI prediction.
pub struct PredictiveCompression {
    inner: AdaptiveCompression,
    predictor: LinearPredictor,
    /// How far ahead to extrapolate: should approximate the end-to-end ROI
    /// update latency (feedback delay + one-way video delay).
    horizon: SimDuration,
    last_feedback_at: Option<SimTime>,
    last_observed: Option<Roi>,
}

impl PredictiveCompression {
    /// Create the policy with a prediction horizon.
    pub fn new(horizon: SimDuration) -> Self {
        PredictiveCompression {
            inner: AdaptiveCompression::new(),
            predictor: LinearPredictor::default(),
            horizon,
            last_feedback_at: None,
            last_observed: None,
        }
    }

    /// The horizon in use.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }
}

impl Default for PredictiveCompression {
    fn default() -> Self {
        // The cellular ROI-update latency scale the paper reports.
        PredictiveCompression::new(SimDuration::from_millis(250))
    }
}

impl CompressionPolicy for PredictiveCompression {
    fn name(&self) -> &'static str {
        "POI360+pred"
    }

    fn matrix(&mut self, grid: &TileGrid, sender_roi: &Roi) -> CompressionMatrix {
        // Keep the predictor fed even between feedback messages (the
        // session passes the latest knowledge every frame).
        let target =
            self.predictor.predict_roi(grid, self.horizon.as_secs_f64()).unwrap_or(*sender_roi);
        self.inner.matrix(grid, &target)
    }

    fn on_roi_feedback(&mut self, now: SimTime, roi: &Roi) {
        let dt = match self.last_feedback_at {
            Some(last) => now.saturating_since(last).as_secs_f64(),
            None => 0.0,
        };
        // Skip duplicate deliveries in the same tick.
        if dt > 0.0 || self.last_feedback_at.is_none() {
            self.predictor.observe(roi.yaw_deg, roi.pitch_deg, dt.max(1e-3));
            self.last_feedback_at = Some(now);
            self.last_observed = Some(*roi);
        }
    }

    fn on_mismatch_feedback(&mut self, now: SimTime, m: SimDuration) {
        self.inner.on_mismatch_feedback(now, m);
    }

    fn mode_index(&self) -> Option<usize> {
        self.inner.mode_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_video::compression::L_MIN;
    use poi360_video::frame::TilePos;

    fn grid() -> TileGrid {
        TileGrid::POI360
    }

    #[test]
    fn without_feedback_falls_back_to_sender_knowledge() {
        let mut p = PredictiveCompression::default();
        let roi = Roi::at_tile(&grid(), TilePos::new(4, 4));
        let m = p.matrix(&grid(), &roi);
        assert_eq!(m.roi_center, roi.center);
    }

    #[test]
    fn leads_a_constant_pan() {
        let mut p = PredictiveCompression::new(SimDuration::from_millis(500));
        // Feed a steady 30 deg/s pan via feedback samples.
        for k in 0..40u64 {
            let yaw = 100.0 + k as f64 * 0.9; // 0.9 deg per 30 ms = 30 deg/s
            let roi = Roi::from_angles(&grid(), yaw, 0.0);
            p.on_roi_feedback(SimTime::from_millis(k * 30), &roi);
        }
        let last = Roi::from_angles(&grid(), 100.0 + 39.0 * 0.9, 0.0);
        let m = p.matrix(&grid(), &last);
        // Predicted center leads the last report by ~15 degrees (0.5 tile),
        // so the matrix center is at or ahead of the reported tile.
        let lead = grid().dx(m.roi_center.i, last.center.i);
        assert!(lead <= 1, "lead {lead}");
        // The reported position must still be within the protected region.
        assert_eq!(m.level(last.center), L_MIN);
    }

    #[test]
    fn mode_adaptation_still_works() {
        let mut p = PredictiveCompression::default();
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            p.on_mismatch_feedback(now, SimDuration::from_millis(2_500));
            now += SimDuration::from_millis(100);
        }
        assert_eq!(p.mode_index(), Some(8));
    }

    #[test]
    fn duplicate_feedback_in_same_tick_is_ignored() {
        let mut p = PredictiveCompression::default();
        let roi = Roi::at_tile(&grid(), TilePos::new(2, 2));
        p.on_roi_feedback(SimTime::from_millis(5), &roi);
        p.on_roi_feedback(SimTime::from_millis(5), &roi);
        // No panic, predictor stays sane.
        assert!(p.predictor.predict(0.1).is_some());
    }
}
