use poi360_core::config::*;
use poi360_core::session::Session;
use poi360_lte::scenario::{BackgroundLoad, Scenario};
use poi360_sim::time::SimDuration;
use poi360_viewport::motion::UserArchetype;

fn run(scheme: CompressionScheme, rc: RateControlKind, net: NetworkKind, seed: u64) {
    let cfg = SessionConfig {
        scheme,
        rate_control: rc,
        network: net,
        user: UserArchetype::EventDriven,
        duration: SimDuration::from_secs(60),
        seed,
        ..Default::default()
    };
    let r = Session::new(cfg).run();
    let bufs = r.fw_buffer.values();
    let empty = if bufs.is_empty() {
        0.0
    } else {
        bufs.iter().filter(|&&b| b < 1.0).count() as f64 / bufs.len() as f64
    };
    println!(
        "{:8} {:5} {:18} rv={:5.2}M tput={:5.2}M tput_std={:4.2}M buf={:5.1}K empty={:4.1}% freeze={:5.2}% med={:4.0}ms psnr={:4.1} std={:4.1} lost={:3} det={}",
        scheme.label(), rc.label(),
        net.label(),
        r.video_rate.mean().unwrap_or(0.0) / 1e6,
        r.mean_throughput_bps() / 1e6,
        r.throughput_std_bps() / 1e6,
        r.fw_buffer.mean().unwrap_or(0.0) / 1e3,
        empty * 100.0,
        r.freeze_ratio() * 100.0,
        r.median_delay_ms(),
        r.mean_psnr_db(),
        r.psnr_std_db(),
        r.frames_lost,
        r.uplink_detections,
    );
}

#[test]
#[ignore]
fn dump() {
    let base = NetworkKind::Cellular(Scenario::baseline());
    let busy =
        NetworkKind::Cellular(Scenario { load: BackgroundLoad::Busy, ..Scenario::baseline() });
    for seed in [11u64, 12] {
        for scheme in
            [CompressionScheme::Poi360, CompressionScheme::Conduit, CompressionScheme::Pyramid]
        {
            run(scheme, RateControlKind::Gcc, base, seed);
        }
        run(CompressionScheme::Poi360, RateControlKind::Fbcc, base, seed);
        run(CompressionScheme::Poi360, RateControlKind::Gcc, busy, seed);
        run(CompressionScheme::Poi360, RateControlKind::Fbcc, busy, seed);
        run(CompressionScheme::Poi360, RateControlKind::Gcc, NetworkKind::Wireline, seed);
        run(CompressionScheme::Conduit, RateControlKind::Gcc, NetworkKind::Wireline, seed);
        run(CompressionScheme::Pyramid, RateControlKind::Gcc, NetworkKind::Wireline, seed);
        println!();
    }
}
