//! Property tests for the OCC controller (ISSUE 9 satellites): rate
//! bounds under arbitrary diag streams, grant-monotone response, and
//! post-outage recovery against the fault suite's trough-progress bound.

use poi360_core::occ::{Occ, OccConfig};
use poi360_lte::diag::{DiagReport, DiagSample};
use poi360_sim::time::SimTime;
use poi360_testkit::{prop_assert, prop_check};

fn report(start_ms: u64, buffers: &[u64], tbs: u32) -> DiagReport {
    DiagReport {
        delivered_at: SimTime::from_millis(start_ms + buffers.len() as u64),
        samples: buffers
            .iter()
            .enumerate()
            .map(|(k, &b)| DiagSample {
                at: SimTime::from_millis(start_ms + k as u64),
                buffer_bytes: b,
                tbs_bits: tbs,
            })
            .collect(),
    }
}

/// Under completely arbitrary diag batches — any mix of idle, busy,
/// frozen, and outage epochs — the requested rates never leave the
/// configured envelope and the pacer multiple holds exactly.
#[test]
fn rates_stay_bounded_under_arbitrary_diag_streams() {
    prop_check!("occ_bounds", 96, |g| {
        let cfg = OccConfig::default();
        let mut occ = Occ::new(g.f64_in(1e4, 1e8), cfg);
        let epochs = g.usize_in(1, 120);
        for epoch in 0..epochs {
            let buffers = g.vec_u64(1, 60, 0, 200_000);
            let tbs = g.u32_in(0, 60_000);
            occ.on_diag(
                &report(epoch as u64 * 40, &buffers, tbs),
                SimTime::from_millis(epoch as u64 * 40 + 40),
            );
            let video = occ.video_rate_bps();
            prop_assert!(
                video >= cfg.min_rate_bps && video <= cfg.max_rate_bps,
                "video rate {video} outside [{}, {}]",
                cfg.min_rate_bps,
                cfg.max_rate_bps
            );
            prop_assert!(
                (occ.rtp_rate_bps() - cfg.rtp_multiple * video).abs() < 1e-6,
                "pacer multiple drifted"
            );
            let cap = occ.capacity_bps();
            prop_assert!(
                cap >= cfg.min_rate_bps / cfg.headroom - 1e-6 && cap <= cfg.max_rate_bps + 1e-6,
                "capacity {cap} left its clamp range"
            );
        }
        Ok(())
    });
}

/// Feeding the same buffer trajectory with per-epoch grants that are
/// everywhere at least as large must never produce a smaller capacity
/// estimate or video rate: the EWMA, the probe, and the clamp are all
/// monotone in the granted TBS.
///
/// Scoped to live streams: every generated report carries at least two
/// distinct buffer values, so the frozen-pair predicate (which reacts to
/// the *absence* of information, not its magnitude) never fires — a
/// stall hold on one stream but not the other is the one deliberate
/// non-monotonicity in the controller.
#[test]
fn response_is_monotone_in_the_granted_tbs() {
    prop_check!("occ_monotone", 96, |g| {
        let cfg = OccConfig::default();
        let start = g.f64_in(1e5, 1e7);
        let mut lo = Occ::new(start, cfg);
        let mut hi = Occ::new(start, cfg);
        let epochs = g.usize_in(1, 80);
        for epoch in 0..epochs {
            let mut buffers = g.vec_u64(2, 60, 0, 150_000);
            if buffers.iter().all(|&b| b == buffers[0]) {
                // Force two distinct values so neither stream can ever
                // look like a frozen diag read.
                let last = buffers.len() - 1;
                buffers[last] = buffers[0] + 1;
            }
            let tbs = g.u32_in(0, 40_000);
            let extra = g.u32_in(0, 20_000);
            let at = SimTime::from_millis(epoch as u64 * 40 + 40);
            lo.on_diag(&report(epoch as u64 * 40, &buffers, tbs), at);
            hi.on_diag(&report(epoch as u64 * 40, &buffers, tbs + extra), at);
            prop_assert!(
                hi.capacity_bps() >= lo.capacity_bps() - 1e-9,
                "epoch {epoch}: capacity not monotone ({} < {})",
                hi.capacity_bps(),
                lo.capacity_bps()
            );
            prop_assert!(
                hi.video_rate_bps() >= lo.video_rate_bps() - 1e-9,
                "epoch {epoch}: video rate not monotone"
            );
        }
        Ok(())
    });
}

/// Warm-up, a full outage (zero grants, swelling backlog), then clean
/// recovery epochs: the post-outage rate must clear the fault suite's
/// full-scale trough-progress bound (post >= 1.2x trough) and return to
/// at least 90% of the pre-fault rate — the controller may not latch
/// onto the outage floor.
#[test]
fn post_outage_rate_clears_the_trough_progress_bound() {
    prop_check!("occ_recovery", 48, |g| {
        let cfg = OccConfig::default();
        let tbs = g.u32_in(2_000, 8_000);
        let busy: Vec<u64> = (0..40).map(|k| 8_000 + (k % 3) * 400 + g.u64_in(0, 50)).collect();
        let mut occ = Occ::new(1e6, cfg);
        for epoch in 0..150u64 {
            occ.on_diag(&report(epoch * 40, &busy, tbs), SimTime::from_millis(epoch * 40 + 40));
        }
        let pre = occ.video_rate_bps();

        let outage_epochs = g.u64_in(5, 50);
        let mut trough = pre;
        for k in 0..outage_epochs {
            let swollen: Vec<u64> = (0..40).map(|j| 80_000 + k * 1_000 + j).collect();
            let start = (150 + k) * 40;
            occ.on_diag(&report(start, &swollen, 0), SimTime::from_millis(start + 40));
            trough = trough.min(occ.video_rate_bps());
        }
        prop_assert!(trough < pre, "an outage must depress the rate");

        for k in 0..150u64 {
            let start = (150 + outage_epochs + k) * 40;
            occ.on_diag(&report(start, &busy, tbs), SimTime::from_millis(start + 40));
        }
        let post = occ.video_rate_bps();
        prop_assert!(
            post >= 1.2 * trough,
            "post {post} under the trough-progress bound (trough {trough})"
        );
        prop_assert!(post >= 0.9 * pre, "post {post} never re-approached pre {pre}");
        Ok(())
    });
}
