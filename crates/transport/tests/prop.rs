//! Property-based tests for the transport crate, on the in-repo
//! `poi360_testkit` harness (64+ seeded cases per property).

use poi360_net::packet::{FrameTag, Packet};
use poi360_sim::time::{SimDuration, SimTime};
use poi360_testkit::{prop_assert, prop_assert_eq, prop_assume, prop_check};
use poi360_transport::gcc::{GccReceiver, GccSender};
use poi360_transport::pacer::Pacer;
use poi360_transport::rtp::Packetizer;

/// The pacer conserves packets: everything enqueued is eventually
/// released, in order, and never faster than the configured rate
/// (beyond the burst allowance).
#[test]
fn pacer_conserves_and_limits() {
    prop_check!(64, |g| {
        let rate_kbps = g.u64_in(200, 9_999);
        let sizes = g.vec_u32(1, 100, 100, 1_499);
        let rate = rate_kbps as f64 * 1e3;
        let mut pacer = Pacer::new(rate);
        let total_bytes: u64 = sizes.iter().map(|&b| b as u64).sum();
        for (k, &bytes) in sizes.iter().enumerate() {
            pacer.enqueue(Packet::video(
                k as u64,
                bytes,
                SimTime::ZERO,
                FrameTag { frame_no: 0, index: k as u32, count: sizes.len() as u32 },
            ));
        }
        let mut released: Vec<u64> = Vec::new();
        let mut released_bytes = 0u64;
        let mut now = SimTime::ZERO;
        // Generous horizon: enough ms to drain everything at the rate.
        let horizon_ms = (total_bytes as f64 * 8.0 / rate * 1e3) as u64 + 100;
        for _ in 0..horizon_ms {
            now += SimDuration::from_millis(1);
            for p in pacer.tick(now) {
                released.push(p.seq);
                released_bytes += p.bytes as u64;
            }
            // Rate bound: released bytes never exceed rate*t + burst.
            let budget = rate / 8.0 * now.as_secs_f64() + rate / 8.0 * 0.01 + 2_000.0;
            prop_assert!(released_bytes as f64 <= budget + 1_500.0);
        }
        prop_assert_eq!(released_bytes, total_bytes);
        let expect: Vec<u64> = (0..sizes.len() as u64).collect();
        prop_assert_eq!(released, expect);
        Ok(())
    });
}

/// Packetizer output always reassembles to the input size, for any
/// payload size.
#[test]
fn packetizer_partition() {
    prop_check!(128, |g| {
        let payload = g.u32_in(0, 499_999);
        let mut pz = Packetizer::new();
        let pkts = pz.packetize(9, payload, SimTime::ZERO);
        let total: u32 = pkts.iter().map(|p| p.bytes - poi360_transport::rtp::HEADER_BYTES).sum();
        prop_assert_eq!(total, payload);
        // Tags are a proper partition.
        let count = pkts.len() as u32;
        for (k, p) in pkts.iter().enumerate() {
            let tag = p.frame.unwrap();
            prop_assert_eq!(tag.count, count);
            prop_assert_eq!(tag.index, k as u32);
        }
        Ok(())
    });
}

/// GCC receiver never proposes a rate outside its clamps, whatever the
/// arrival pattern.
#[test]
fn gcc_receiver_rate_clamped() {
    prop_check!(64, |g| {
        let delays = g.vec_u64(10, 120, 10, 499);
        let mut rx = GccReceiver::new(2.0e6);
        for (f, &d) in delays.iter().enumerate() {
            let sent = SimTime::from_millis(f as u64 * 28);
            let arrival = sent + SimDuration::from_millis(d);
            rx.on_packet(
                &Packet::video(
                    f as u64,
                    1_240,
                    sent,
                    FrameTag { frame_no: f as u64, index: 0, count: 1 },
                ),
                arrival,
            );
        }
        if let Some(remb) = rx.poll_remb(SimTime::from_secs(100)) {
            prop_assert!(remb.rate_bps >= 50_000.0);
            prop_assert!(remb.rate_bps <= 30.0e6);
        }
        Ok(())
    });
}

/// The sender-side loss controller is monotone in loss: a lossier
/// report never yields a higher rate than a cleaner one.
#[test]
fn gcc_sender_monotone_in_loss() {
    prop_check!(128, |g| {
        let l1 = g.f64_in(0.0, 0.5);
        let l2 = g.f64_in(0.0, 0.5);
        prop_assume!(l1 < l2);
        let mut clean = GccSender::new(2.0e6);
        let mut lossy = GccSender::new(2.0e6);
        for _ in 0..10 {
            clean.on_receiver_report(l1, SimDuration::from_millis(80));
            lossy.on_receiver_report(l2, SimDuration::from_millis(80));
        }
        prop_assert!(lossy.target_rate_bps() <= clean.target_rate_bps() + 1e-9);
        Ok(())
    });
}
