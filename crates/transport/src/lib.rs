//! WebRTC-like media transport for the POI360 reproduction.
//!
//! The paper's prototype rides on WebRTC (§5): VP8 frames are packetized
//! into RTP, paced onto the network, reassembled at the viewer, and the
//! sending rate is governed by Google Congestion Control (GCC) unless
//! POI360's FBCC overrides it. This crate implements those mechanics from
//! scratch:
//!
//! * [`rtp`] — packetization of encoded frames into ≤1200-byte RTP packets,
//!   in-order reassembly, gap detection, and NACK-driven retransmission
//!   (WebRTC's loss handling, per the Holmer et al. reference the paper
//!   cites).
//! * [`pacer`] — the token-bucket packet pacer that turns the RTP sending
//!   rate `R_rtp` into a smooth packet flow; its queue is the paper's
//!   "application-layer packet buffer" (Fig. 9).
//! * [`rtcp`] — receiver reports: loss fraction, jitter, and RTT estimation.
//! * [`gcc`] — Google Congestion Control: the delay-gradient arrival
//!   filter, adaptive-threshold overuse detector, AIMD remote-rate
//!   controller (receiver side), and the loss-based sender-side bound,
//!   combined exactly as in the RMCAT draft the paper cites [12].

pub mod gcc;
pub mod pacer;
pub mod rtcp;
pub mod rtp;

pub use gcc::{GccReceiver, GccSender, RateControlSignal};
pub use pacer::Pacer;
pub use rtcp::RttEstimator;
pub use rtcp::{ReceiverReport, ReceiverStats};
pub use rtp::Nack;
pub use rtp::{Packetizer, ReassembledFrame, Reassembler};
