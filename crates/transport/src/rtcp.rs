//! RTCP receiver statistics and reports.
//!
//! The receiver tracks loss fraction and interarrival jitter per reporting
//! interval and returns compact receiver reports; the sender computes RTT
//! from the echoed timestamp. GCC's loss-based controller consumes the loss
//! fraction; FBCC consumes the RTT (its 2-RTT hold window, paper Eq. 6).

use poi360_net::packet::Packet;
use poi360_sim::time::{SimDuration, SimTime};

/// A receiver report (the fields GCC and FBCC need).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReceiverReport {
    /// When the report was generated at the receiver.
    pub generated_at: SimTime,
    /// Fraction of packets lost in the interval, `[0, 1]`.
    pub loss_fraction: f64,
    /// Cumulative packets received.
    pub received: u64,
    /// Interarrival jitter estimate (RFC 3550 style), in ms.
    pub jitter_ms: f64,
    /// Incoming media rate over the interval, bps.
    pub incoming_rate_bps: f64,
}

/// Receiver-side bookkeeping that produces [`ReceiverReport`]s.
#[derive(Clone, Debug)]
pub struct ReceiverStats {
    highest_seq: Option<u64>,
    received_in_interval: u64,
    expected_start_seq: Option<u64>,
    cumulative_received: u64,
    bytes_in_interval: u64,
    interval_start: SimTime,
    jitter_ms: f64,
    last_transit_ms: Option<f64>,
}

impl Default for ReceiverStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ReceiverStats {
    /// Fresh stats.
    pub fn new() -> Self {
        ReceiverStats {
            highest_seq: None,
            received_in_interval: 0,
            expected_start_seq: None,
            cumulative_received: 0,
            bytes_in_interval: 0,
            interval_start: SimTime::ZERO,
            jitter_ms: 0.0,
            last_transit_ms: None,
        }
    }

    /// Record a received media packet.
    pub fn on_packet(&mut self, pkt: &Packet, arrival: SimTime) {
        if self.expected_start_seq.is_none() {
            self.expected_start_seq = Some(pkt.seq);
        }
        self.highest_seq = Some(self.highest_seq.map_or(pkt.seq, |h| h.max(pkt.seq)));
        self.received_in_interval += 1;
        self.cumulative_received += 1;
        self.bytes_in_interval += pkt.bytes as u64;

        // RFC 3550 jitter: smoothed |transit variation|.
        let transit_ms = arrival.saturating_since(pkt.sent_at).as_micros() as f64 / 1e3;
        if let Some(last) = self.last_transit_ms {
            let d = (transit_ms - last).abs();
            self.jitter_ms += (d - self.jitter_ms) / 16.0;
        }
        self.last_transit_ms = Some(transit_ms);
    }

    /// Close the current interval and emit a report.
    pub fn make_report(&mut self, now: SimTime) -> ReceiverReport {
        let expected = match (self.expected_start_seq, self.highest_seq) {
            // If only retransmissions of older packets arrived this
            // interval, the highest seq can sit below the interval's
            // expected start: nothing *new* was expected.
            (Some(start), Some(hi)) if hi >= start => hi - start + 1,
            _ => 0,
        };
        let loss_fraction = if expected == 0 {
            0.0
        } else {
            (1.0 - self.received_in_interval as f64 / expected as f64).clamp(0.0, 1.0)
        };
        let span = now.saturating_since(self.interval_start);
        let incoming_rate_bps = poi360_sim::time::bits_per_sec(self.bytes_in_interval, span);

        let report = ReceiverReport {
            generated_at: now,
            loss_fraction,
            received: self.cumulative_received,
            jitter_ms: self.jitter_ms,
            incoming_rate_bps,
        };
        // Reset the interval; the next expected window starts just above
        // the highest seq seen.
        self.expected_start_seq = self.highest_seq.map(|h| h + 1);
        self.received_in_interval = 0;
        self.bytes_in_interval = 0;
        self.interval_start = now;
        report
    }
}

/// Sender-side RTT estimator fed by report round trips.
#[derive(Clone, Copy, Debug, Default)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
}

impl RttEstimator {
    /// Fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one RTT sample (smoothed 7/8 as TCP does).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.srtt = Some(match self.srtt {
            None => rtt,
            Some(s) => SimDuration::from_micros((s.as_micros() * 7 + rtt.as_micros()) / 8),
        });
    }

    /// Smoothed RTT; defaults to 100 ms before any sample (a typical
    /// cellular value, so FBCC's 2-RTT window is sane at startup).
    pub fn rtt(&self) -> SimDuration {
        self.srtt.unwrap_or(SimDuration::from_millis(100))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_net::packet::FrameTag;

    fn vpkt(seq: u64, sent_ms: u64) -> Packet {
        Packet::video(
            seq,
            1_240,
            SimTime::from_millis(sent_ms),
            FrameTag { frame_no: seq, index: 0, count: 1 },
        )
    }

    #[test]
    fn no_loss_no_fraction() {
        let mut s = ReceiverStats::new();
        for k in 0..10 {
            s.on_packet(&vpkt(k, k), SimTime::from_millis(k + 50));
        }
        let r = s.make_report(SimTime::from_millis(100));
        assert_eq!(r.loss_fraction, 0.0);
        assert_eq!(r.received, 10);
    }

    #[test]
    fn loss_fraction_counts_gaps() {
        let mut s = ReceiverStats::new();
        for k in [0u64, 1, 2, 5, 6, 7, 8, 9] {
            s.on_packet(&vpkt(k, k), SimTime::from_millis(k + 50));
        }
        let r = s.make_report(SimTime::from_millis(100));
        assert!((r.loss_fraction - 0.2).abs() < 1e-9, "loss {}", r.loss_fraction);
    }

    #[test]
    fn intervals_reset() {
        let mut s = ReceiverStats::new();
        for k in [0u64, 2] {
            s.on_packet(&vpkt(k, k), SimTime::from_millis(k + 50));
        }
        let r1 = s.make_report(SimTime::from_millis(100));
        assert!(r1.loss_fraction > 0.0);
        for k in [3u64, 4, 5] {
            s.on_packet(&vpkt(k, k), SimTime::from_millis(k + 150));
        }
        let r2 = s.make_report(SimTime::from_millis(200));
        assert_eq!(r2.loss_fraction, 0.0, "new interval starts clean");
        assert_eq!(r2.received, 5);
    }

    #[test]
    fn retransmission_only_interval_does_not_overflow() {
        // Regression: an interval in which only retransmitted (old-seq)
        // packets arrive used to underflow the expected-packet count.
        let mut s = ReceiverStats::new();
        for k in 0..5u64 {
            s.on_packet(&vpkt(k, k), SimTime::from_millis(k + 50));
        }
        s.make_report(SimTime::from_millis(100)); // expected start is now 5
                                                  // Only a retransmission of seq 2 arrives before the next report.
        let mut old = vpkt(2, 2);
        old.retransmit = true;
        s.on_packet(&old, SimTime::from_millis(150));
        let r = s.make_report(SimTime::from_millis(200));
        assert_eq!(r.loss_fraction, 0.0);
        assert_eq!(r.received, 6);
    }

    #[test]
    fn incoming_rate_measured() {
        let mut s = ReceiverStats::new();
        // 100 packets × 1240 B in 1 s ≈ 0.99 Mbps.
        for k in 0..100u64 {
            s.on_packet(&vpkt(k, k * 10), SimTime::from_millis(k * 10 + 40));
        }
        let r = s.make_report(SimTime::from_secs(1));
        assert!((r.incoming_rate_bps - 0.992e6).abs() < 0.05e6, "rate {}", r.incoming_rate_bps);
    }

    #[test]
    fn jitter_rises_with_variable_transit() {
        let mut stable = ReceiverStats::new();
        let mut jittery = ReceiverStats::new();
        for k in 0..200u64 {
            stable.on_packet(&vpkt(k, k * 10), SimTime::from_millis(k * 10 + 50));
            let wobble = if k % 2 == 0 { 30 } else { 0 };
            jittery.on_packet(&vpkt(k, k * 10), SimTime::from_millis(k * 10 + 50 + wobble));
        }
        let rs = stable.make_report(SimTime::from_secs(2));
        let rj = jittery.make_report(SimTime::from_secs(2));
        assert!(rj.jitter_ms > rs.jitter_ms + 5.0, "{} vs {}", rj.jitter_ms, rs.jitter_ms);
    }

    #[test]
    fn rtt_estimator_smooths() {
        let mut e = RttEstimator::new();
        assert_eq!(e.rtt(), SimDuration::from_millis(100));
        e.on_sample(SimDuration::from_millis(80));
        assert_eq!(e.rtt(), SimDuration::from_millis(80));
        e.on_sample(SimDuration::from_millis(160));
        // 80*7/8 + 160/8 = 90.
        assert_eq!(e.rtt(), SimDuration::from_millis(90));
    }
}
