//! Token-bucket packet pacer.
//!
//! The pacer is the knob POI360's FBCC turns (paper Eq. 7): its drain rate
//! is the RTP sending rate `R_rtp`, its queue is the "application-layer
//! packet buffer" of Fig. 9, and its output feeds the LTE firmware buffer.
//! Retransmissions jump the queue (WebRTC pacer priority).

use poi360_net::packet::Packet;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;
use std::collections::VecDeque;

/// Retransmissions older than this (since original send) are dropped at
/// release time: the receiver abandons an incomplete frame 1 s after its
/// first packet, so a retransmission this stale can never display.
const STALE_RTX_AGE: SimDuration = SimDuration::from_millis(800);

/// The pacer.
#[derive(Debug)]
pub struct Pacer {
    rate_bps: f64,
    /// Accumulated send credit in bytes.
    credit_bytes: f64,
    /// Credit cap: at most this many ms worth of burst.
    burst: SimDuration,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    last_tick: SimTime,
    recorder: Recorder,
}

impl Pacer {
    /// Create a pacer with an initial rate.
    pub fn new(initial_rate_bps: f64) -> Self {
        assert!(initial_rate_bps > 0.0);
        Pacer {
            rate_bps: initial_rate_bps,
            credit_bytes: 0.0,
            burst: SimDuration::from_millis(10),
            queue: VecDeque::new(),
            queued_bytes: 0,
            last_tick: SimTime::ZERO,
            recorder: Recorder::null(),
        }
    }

    /// Attach the session's probe recorder.
    pub fn set_recorder(&mut self, rec: &Recorder) {
        self.recorder = rec.clone();
    }

    /// Current pacing rate (bps).
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Update the pacing rate (FBCC's Eq. 7 output, or `R_v` under GCC).
    pub fn set_rate_bps(&mut self, rate_bps: f64) {
        self.rate_bps = rate_bps.max(1_000.0);
    }

    /// Bytes waiting in the application-layer buffer.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets waiting.
    pub fn queued_packets(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue a fresh packet at the tail.
    pub fn enqueue(&mut self, pkt: Packet) {
        self.queued_bytes += pkt.bytes as u64;
        self.queue.push_back(pkt);
    }

    /// Enqueue a retransmission at the head (WebRTC pacer priority).
    pub fn enqueue_front(&mut self, pkt: Packet) {
        self.queued_bytes += pkt.bytes as u64;
        self.queue.push_front(pkt);
    }

    /// Advance to `now` and release the packets the rate budget allows.
    pub fn tick(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Like [`Pacer::tick`], but appends released packets into a
    /// caller-owned buffer so the per-tick hot path reuses capacity.
    pub fn tick_into(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        let dt = now.saturating_since(self.last_tick);
        self.last_tick = now;
        self.credit_bytes += self.rate_bps / 8.0 * dt.as_secs_f64();
        let cap = self.rate_bps / 8.0 * self.burst.as_secs_f64();
        self.credit_bytes = self.credit_bytes.min(cap.max(2_000.0));

        let released_from = out.len();
        while let Some(head) = self.queue.front() {
            // A retransmission that aged past the receiver's abandon
            // window while queued is dead weight: drop it rather than
            // spend rate budget starving fresh frames behind it.
            if head.retransmit && now.saturating_since(head.sent_at) > STALE_RTX_AGE {
                let pkt = self.queue.pop_front().expect("head exists");
                self.queued_bytes -= pkt.bytes as u64;
                self.recorder.count("pacer.stale_rtx_dropped", now, 1);
                continue;
            }
            if (head.bytes as f64) > self.credit_bytes {
                break;
            }
            let pkt = self.queue.pop_front().expect("head exists");
            self.credit_bytes -= pkt.bytes as f64;
            self.queued_bytes -= pkt.bytes as u64;
            out.push(pkt);
        }
        if out.len() > released_from {
            let released: u64 = out[released_from..].iter().map(|p| p.bytes as u64).sum();
            self.recorder.event("pacer.released_bytes", now, released as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_net::packet::FrameTag;

    fn pkt(seq: u64, bytes: u32) -> Packet {
        Packet::video(seq, bytes, SimTime::ZERO, FrameTag { frame_no: 0, index: 0, count: 1 })
    }

    #[test]
    fn drains_at_configured_rate() {
        let mut p = Pacer::new(1.0e6); // 1 Mbps = 125 kB/s
        for k in 0..200 {
            p.enqueue(pkt(k, 1_250));
        }
        let mut released = 0usize;
        for ms in 1..=1_000u64 {
            released += p.tick(SimTime::from_millis(ms)).len();
        }
        // 125 kB/s / 1250 B = 100 packets per second.
        assert!((95..=105).contains(&released), "released {released}");
    }

    #[test]
    fn burst_cap_limits_idle_credit() {
        let mut p = Pacer::new(8.0e6); // 1 MB/s
                                       // Idle for 10 seconds: credit must not accumulate unboundedly.
        p.tick(SimTime::from_secs(10));
        for k in 0..100 {
            p.enqueue(pkt(k, 1_250));
        }
        let burst = p.tick(SimTime::from_secs(10)).len();
        // 10 ms burst at 1 MB/s = 10 kB = 8 packets.
        assert!(burst <= 9, "burst {burst}");
    }

    #[test]
    fn retransmissions_jump_the_queue() {
        let mut p = Pacer::new(1.0e9);
        p.enqueue(pkt(1, 500));
        p.enqueue(pkt(2, 500));
        let mut retx = pkt(99, 500);
        retx.retransmit = true;
        p.enqueue_front(retx);
        let out = p.tick(SimTime::from_millis(1));
        assert_eq!(out[0].seq, 99);
        assert_eq!(out[1].seq, 1);
    }

    #[test]
    fn rate_changes_take_effect() {
        let mut p = Pacer::new(1.0e6);
        for k in 0..1_000 {
            p.enqueue(pkt(k, 1_250));
        }
        let mut slow = 0;
        for ms in 1..=500u64 {
            slow += p.tick(SimTime::from_millis(ms)).len();
        }
        p.set_rate_bps(4.0e6);
        let mut fast = 0;
        for ms in 501..=1_000u64 {
            fast += p.tick(SimTime::from_millis(ms)).len();
        }
        assert!(fast > slow * 3, "fast {fast} slow {slow}");
    }

    #[test]
    fn queued_bytes_tracks_enqueue_release() {
        let mut p = Pacer::new(1.0e6);
        p.enqueue(pkt(1, 1_000));
        p.enqueue(pkt(2, 500));
        assert_eq!(p.queued_bytes(), 1_500);
        assert_eq!(p.queued_packets(), 2);
        p.tick(SimTime::from_millis(100));
        assert_eq!(p.queued_bytes(), 0);
    }

    #[test]
    fn rate_floor_prevents_stall() {
        let mut p = Pacer::new(1.0e6);
        p.set_rate_bps(0.0);
        assert!(p.rate_bps() >= 1_000.0);
    }
}
