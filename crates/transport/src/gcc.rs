//! Google Congestion Control, from scratch.
//!
//! The paper's baseline rate control (§2, §4.3): "Google Congestion Control
//! (GCC) has been a leading proposal in RMCAT, and acts as the media
//! transportation framework in mainstream browsers". POI360 degrades to GCC
//! when congestion is *not* on the cellular uplink (Eq. 6), and FBCC is
//! evaluated against it (Figs. 6, 15, 16).
//!
//! Receiver side, per the draft the paper cites:
//! 1. **Arrival-time filter** — packets are grouped by video frame; the
//!    inter-group delay variation `d(i) = (t_i − t_{i−1}) − (T_i − T_{i−1})`
//!    feeds a scalar Kalman filter estimating the queuing-delay gradient
//!    `m(t)`.
//! 2. **Adaptive-threshold overuse detector** — `m` is compared against a
//!    threshold γ that adapts (fast up, slow down) so the detector stays
//!    sensitive without starving against TCP; sustained `m > γ` signals
//!    overuse, `m < −γ` underuse.
//! 3. **AIMD remote-rate controller** — Increase (multiplicative ~8 %/s) /
//!    Hold / Decrease (`0.85 × incoming rate`), fed back to the sender via
//!    REMB messages (periodic + immediately on decrease).
//!
//! Sender side: a loss-based controller bounds the REMB rate (cut by
//! `1 − 0.5p` above 10 % loss, probe +5 % below 2 %).
//!
//! The deliberate weakness the paper exploits: every control decision here
//! rides end-to-end signals, so reaction lags the congestion by at least
//! one RTT plus the queue that has already built — FBCC's firmware-buffer
//! detection beats it by construction.

use crate::rtcp::RttEstimator;
use poi360_net::packet::Packet;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;

/// Detector output signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateControlSignal {
    /// Queuing delay gradient significantly positive: back off.
    Overuse,
    /// No significant trend.
    Normal,
    /// Gradient significantly negative: queues draining.
    Underuse,
}

/// Scalar Kalman filter over the inter-group delay variation.
#[derive(Clone, Debug)]
struct ArrivalFilter {
    /// Estimated queuing delay gradient, ms per group.
    m_hat: f64,
    /// Estimate variance.
    e: f64,
    /// Measurement noise variance estimate.
    var_noise: f64,
}

impl ArrivalFilter {
    fn new() -> Self {
        ArrivalFilter { m_hat: 0.0, e: 0.1, var_noise: 2.0 }
    }

    fn update(&mut self, d_ms: f64) -> f64 {
        let z = d_ms - self.m_hat;
        self.var_noise = (0.95 * self.var_noise + 0.05 * z * z).max(0.5);
        self.e += 0.02; // process noise: the gradient drifts
        let k = self.e / (self.e + self.var_noise);
        self.m_hat += k * z;
        self.e *= 1.0 - k;
        self.m_hat
    }
}

/// Adaptive-threshold overuse detector.
#[derive(Clone, Debug)]
struct OveruseDetector {
    threshold_ms: f64,
    last_update: Option<SimTime>,
    over_since: Option<SimTime>,
    prev_m: f64,
    signal: RateControlSignal,
}

impl OveruseDetector {
    /// Sustained-overuse requirement before declaring.
    const OVERUSE_TIME: SimDuration = SimDuration::from_millis(10);

    fn new() -> Self {
        OveruseDetector {
            threshold_ms: 12.5,
            last_update: None,
            over_since: None,
            prev_m: 0.0,
            signal: RateControlSignal::Normal,
        }
    }

    fn update(&mut self, now: SimTime, raw_m: f64, num_deltas: u64) -> RateControlSignal {
        // WebRTC scales the offset by the accumulated evidence before
        // comparing against the threshold: sustained small gradients add up.
        let m = raw_m * (num_deltas.min(60) as f64) * 4.0;

        // Threshold adaptation: chase |m| quickly when above (stay TCP
        // friendly), decay slowly when below (stay sensitive).
        if let Some(last) = self.last_update {
            let dt_ms = now.saturating_since(last).as_micros() as f64 / 1e3;
            let k = if m.abs() > self.threshold_ms { 0.01 } else { 0.00018 };
            self.threshold_ms += dt_ms * k * (m.abs() - self.threshold_ms);
            self.threshold_ms = self.threshold_ms.clamp(6.0, 600.0);
        }
        self.last_update = Some(now);

        self.signal = if m > self.threshold_ms {
            let since = *self.over_since.get_or_insert(now);
            if now.saturating_since(since) >= Self::OVERUSE_TIME && m >= self.prev_m {
                RateControlSignal::Overuse
            } else {
                // Pending overuse: keep the previous verdict until sustained.
                self.signal
            }
        } else if m < -self.threshold_ms {
            self.over_since = None;
            RateControlSignal::Underuse
        } else {
            self.over_since = None;
            RateControlSignal::Normal
        };
        self.prev_m = m;
        self.signal
    }
}

/// AIMD remote-rate controller state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RateState {
    Hold,
    Increase,
    Decrease,
}

/// AIMD remote-rate controller.
#[derive(Clone, Debug)]
struct AimdController {
    state: RateState,
    rate_bps: f64,
    last_update: Option<SimTime>,
    min_rate: f64,
    max_rate: f64,
    decreased: bool,
    /// Set after the first decrease: the controller has seen the link's
    /// capacity region and switches from multiplicative to additive
    /// increase (the draft's "near convergence" regime).
    near_convergence: bool,
}

impl AimdController {
    fn new(start_rate_bps: f64) -> Self {
        AimdController {
            state: RateState::Increase,
            rate_bps: start_rate_bps,
            last_update: None,
            min_rate: 50_000.0,
            max_rate: 30.0e6,
            decreased: false,
            near_convergence: false,
        }
    }

    fn update(&mut self, now: SimTime, signal: RateControlSignal, incoming_rate_bps: f64) -> f64 {
        // State transitions per the draft's table.
        self.state = match (self.state, signal) {
            (_, RateControlSignal::Overuse) => RateState::Decrease,
            (RateState::Decrease, RateControlSignal::Normal) => RateState::Hold,
            (_, RateControlSignal::Normal) => RateState::Increase,
            (_, RateControlSignal::Underuse) => RateState::Hold,
        };
        let dt =
            self.last_update.map(|l| now.saturating_since(l).as_secs_f64()).unwrap_or(0.0).min(1.0);
        self.last_update = Some(now);

        match self.state {
            RateState::Increase => {
                if self.near_convergence {
                    // Additive probing near the discovered capacity.
                    self.rate_bps += 80_000.0 * dt;
                } else {
                    self.rate_bps *= 1.08f64.powf(dt);
                }
                // Never run far ahead of what actually arrives.
                if incoming_rate_bps > 0.0 {
                    self.rate_bps = self.rate_bps.min(1.5 * incoming_rate_bps + 20_000.0);
                }
            }
            RateState::Decrease => {
                let basis = if incoming_rate_bps > 0.0 { incoming_rate_bps } else { self.rate_bps };
                self.rate_bps = 0.8 * basis;
                self.decreased = true;
                self.near_convergence = true;
            }
            RateState::Hold => {}
        }
        self.rate_bps = self.rate_bps.clamp(self.min_rate, self.max_rate);
        self.rate_bps
    }

    /// True once since the last call if a decrease happened (for immediate
    /// REMB feedback).
    fn take_decreased(&mut self) -> bool {
        std::mem::take(&mut self.decreased)
    }
}

/// One REMB feedback message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Remb {
    /// The receiver-estimated maximum bitrate, bps.
    pub rate_bps: f64,
    /// Generation time.
    pub at: SimTime,
}

/// Receiver-side GCC.
#[derive(Clone, Debug)]
pub struct GccReceiver {
    filter: ArrivalFilter,
    detector: OveruseDetector,
    aimd: AimdController,
    // Current frame group being accumulated.
    group_frame: Option<u64>,
    group_last_sent: SimTime,
    group_last_arrival: SimTime,
    // Previous completed group.
    prev_group: Option<(SimTime, SimTime)>,
    // Incoming-rate window.
    window: std::collections::VecDeque<(SimTime, u32)>,
    last_remb: SimTime,
    remb_interval: SimDuration,
    latest_m: f64,
    latest_signal: RateControlSignal,
    num_deltas: u64,
}

impl GccReceiver {
    /// Create a receiver-side controller with a start rate.
    pub fn new(start_rate_bps: f64) -> Self {
        GccReceiver {
            filter: ArrivalFilter::new(),
            detector: OveruseDetector::new(),
            aimd: AimdController::new(start_rate_bps),
            group_frame: None,
            group_last_sent: SimTime::ZERO,
            group_last_arrival: SimTime::ZERO,
            prev_group: None,
            window: std::collections::VecDeque::new(),
            last_remb: SimTime::ZERO,
            remb_interval: SimDuration::from_millis(200),
            latest_m: 0.0,
            latest_signal: RateControlSignal::Normal,
            num_deltas: 0,
        }
    }

    /// Latest delay-gradient estimate (ms/group) — for diagnostics.
    pub fn delay_gradient(&self) -> f64 {
        self.latest_m
    }

    /// Latest detector signal.
    pub fn signal(&self) -> RateControlSignal {
        self.latest_signal
    }

    /// Incoming media rate over the last 500 ms, bps.
    pub fn incoming_rate_bps(&self, now: SimTime) -> f64 {
        let horizon = SimDuration::from_millis(500);
        let cutoff =
            if now.as_micros() > horizon.as_micros() { now - horizon } else { SimTime::ZERO };
        let bytes: u64 =
            self.window.iter().filter(|&&(t, _)| t >= cutoff).map(|&(_, b)| b as u64).sum();
        let span = now.saturating_since(cutoff);
        poi360_sim::time::bits_per_sec(bytes, span)
    }

    /// Record an arriving media packet.
    pub fn on_packet(&mut self, pkt: &Packet, arrival: SimTime) {
        self.window.push_back((arrival, pkt.bytes));
        let horizon = SimDuration::from_millis(600);
        while let Some(&(t, _)) = self.window.front() {
            if arrival.saturating_since(t) > horizon {
                self.window.pop_front();
            } else {
                break;
            }
        }

        // Retransmissions are excluded from the arrival filter (WebRTC does
        // the same): their timing reflects the NACK round trip, not the
        // path's queuing gradient.
        if pkt.retransmit {
            return;
        }
        let Some(tag) = pkt.frame else { return };
        match self.group_frame {
            Some(cur) if cur == tag.frame_no => {
                self.group_last_sent = self.group_last_sent.max(pkt.sent_at);
                self.group_last_arrival = arrival;
            }
            Some(_) => {
                // Group boundary: close the previous group and measure.
                let closed = (self.group_last_sent, self.group_last_arrival);
                if let Some((ps, pa)) = self.prev_group {
                    let d_send = closed.0.saturating_since(ps).as_micros() as f64 / 1e3;
                    let d_arr = closed.1.saturating_since(pa).as_micros() as f64 / 1e3;
                    let d = d_arr - d_send;
                    let m = self.filter.update(d);
                    self.latest_m = m;
                    self.num_deltas += 1;
                    self.latest_signal = self.detector.update(arrival, m, self.num_deltas);
                    let incoming = self.incoming_rate_bps(arrival);
                    self.aimd.update(arrival, self.latest_signal, incoming);
                }
                self.prev_group = Some(closed);
                self.group_frame = Some(tag.frame_no);
                self.group_last_sent = pkt.sent_at;
                self.group_last_arrival = arrival;
            }
            None => {
                self.group_frame = Some(tag.frame_no);
                self.group_last_sent = pkt.sent_at;
                self.group_last_arrival = arrival;
            }
        }
    }

    /// Emit a REMB if due (periodic) or urgent (just decreased).
    pub fn poll_remb(&mut self, now: SimTime) -> Option<Remb> {
        let urgent = self.aimd.take_decreased();
        if urgent || now.saturating_since(self.last_remb) >= self.remb_interval {
            self.last_remb = now;
            Some(Remb { rate_bps: self.aimd.rate_bps, at: now })
        } else {
            None
        }
    }
}

/// Sender-side GCC: loss-based bound combined with the latest REMB.
#[derive(Clone, Debug)]
pub struct GccSender {
    loss_rate_bps: f64,
    remb_bps: f64,
    rtt: RttEstimator,
    min_rate: f64,
    max_rate: f64,
    recorder: Recorder,
}

impl GccSender {
    /// Create a sender-side controller with a start rate.
    pub fn new(start_rate_bps: f64) -> Self {
        GccSender {
            loss_rate_bps: start_rate_bps,
            remb_bps: 30.0e6, // unbounded until the first REMB arrives
            rtt: RttEstimator::new(),
            min_rate: 50_000.0,
            max_rate: 30.0e6,
            recorder: Recorder::null(),
        }
    }

    /// Attach the session's probe recorder.
    pub fn set_recorder(&mut self, rec: &Recorder) {
        self.recorder = rec.clone();
    }

    /// Feed a receiver report's loss fraction plus an RTT sample.
    pub fn on_receiver_report(&mut self, loss_fraction: f64, rtt_sample: SimDuration) {
        self.rtt.on_sample(rtt_sample);
        if loss_fraction > 0.10 {
            self.loss_rate_bps *= 1.0 - 0.5 * loss_fraction;
        } else if loss_fraction < 0.02 {
            self.loss_rate_bps *= 1.05;
        }
        self.loss_rate_bps = self.loss_rate_bps.clamp(self.min_rate, self.max_rate);
    }

    /// Feed a REMB message from the receiver.
    pub fn on_remb(&mut self, remb: Remb) {
        self.remb_bps = remb.rate_bps.clamp(self.min_rate, self.max_rate);
        self.recorder.event("gcc.remb_bps", remb.at, self.remb_bps);
        self.recorder.event("gcc.target_rate_bps", remb.at, self.target_rate_bps());
    }

    /// The GCC target rate `R_gcc`: REMB bounded by the loss controller.
    pub fn target_rate_bps(&self) -> f64 {
        self.loss_rate_bps.min(self.remb_bps)
    }

    /// Smoothed RTT.
    pub fn rtt(&self) -> SimDuration {
        self.rtt.rtt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_net::packet::FrameTag;

    fn frame_pkt(frame: u64, seq: u64, sent_ms: u64) -> Packet {
        sized_pkt(frame, seq, sent_ms, 1_240)
    }

    fn sized_pkt(frame: u64, seq: u64, sent_ms: u64, bytes: u32) -> Packet {
        Packet::video(
            seq,
            bytes,
            SimTime::from_millis(sent_ms),
            FrameTag { frame_no: frame, index: 0, count: 1 },
        )
    }

    /// Feed `n` frames with send interval `send_gap_ms` and per-frame
    /// arrival delay given by `delay_ms(frame)`.
    fn drive(rx: &mut GccReceiver, n: u64, send_gap_ms: u64, delay_ms: impl Fn(u64) -> u64) {
        for f in 0..n {
            let sent = f * send_gap_ms;
            let arrival = sent + delay_ms(f);
            rx.on_packet(&frame_pkt(f, f, sent), SimTime::from_millis(arrival));
        }
    }

    #[test]
    fn steady_arrivals_signal_normal_and_rate_grows() {
        let mut rx = GccReceiver::new(1.0e6);
        // 10.5 kB frames at 36 fps = ~3 Mbps of clean incoming media.
        for f in 0..108u64 {
            rx.on_packet(&sized_pkt(f, f, f * 28, 10_500), SimTime::from_millis(f * 28 + 50));
        }
        assert_eq!(rx.signal(), RateControlSignal::Normal);
        let remb = rx.poll_remb(SimTime::from_secs(3)).expect("periodic REMB");
        assert!(remb.rate_bps > 1.1e6, "rate should probe upward: {}", remb.rate_bps);
    }

    #[test]
    fn growing_queue_triggers_overuse_and_decrease() {
        let mut rx = GccReceiver::new(3.0e6);
        // Delay grows 4 ms per frame: a queue building at the bottleneck.
        drive(&mut rx, 80, 28, |f| 50 + f * 4);
        assert_eq!(rx.signal(), RateControlSignal::Overuse);
        let remb = rx.poll_remb(SimTime::from_secs(10)).expect("REMB after decrease");
        let incoming = rx.incoming_rate_bps(SimTime::from_millis(80 * 28 + 50 + 316));
        // Decrease sets the rate to 0.85 × incoming.
        assert!(
            remb.rate_bps <= incoming * 0.9 + 30_000.0,
            "remb {} incoming {incoming}",
            remb.rate_bps
        );
    }

    #[test]
    fn draining_queue_signals_underuse() {
        let mut rx = GccReceiver::new(3.0e6);
        // Delay shrinks rapidly: queue draining.
        drive(&mut rx, 60, 28, |f| 300u64.saturating_sub(f * 5).max(20));
        assert_eq!(rx.signal(), RateControlSignal::Underuse);
    }

    #[test]
    fn urgent_remb_on_decrease() {
        let mut rx = GccReceiver::new(3.0e6);
        drive(&mut rx, 80, 28, |f| 50 + f * 4);
        // Immediately after overuse, a REMB fires regardless of period.
        let t = SimTime::from_millis(80 * 28 + 400);
        let first = rx.poll_remb(t);
        assert!(first.is_some());
        // And not again right away (no new decrease, period not elapsed).
        let second = rx.poll_remb(t + SimDuration::from_millis(1));
        assert!(second.is_none());
    }

    #[test]
    fn incoming_rate_window_measures() {
        let mut rx = GccReceiver::new(1.0e6);
        // 36 fps × 1240 B ≈ 0.357 Mbps.
        drive(&mut rx, 72, 28, |_| 40);
        let rate = rx.incoming_rate_bps(SimTime::from_millis(72 * 28 + 40));
        assert!((rate - 0.357e6).abs() < 0.08e6, "rate {rate}");
    }

    #[test]
    fn sender_loss_controller_cuts_on_heavy_loss() {
        let mut tx = GccSender::new(3.0e6);
        tx.on_receiver_report(0.2, SimDuration::from_millis(80));
        assert!((tx.target_rate_bps() - 3.0e6 * 0.9).abs() < 1.0, "{}", tx.target_rate_bps());
    }

    #[test]
    fn sender_probes_up_when_clean() {
        let mut tx = GccSender::new(1.0e6);
        for _ in 0..5 {
            tx.on_receiver_report(0.0, SimDuration::from_millis(60));
        }
        assert!(tx.target_rate_bps() > 1.2e6);
    }

    #[test]
    fn sender_holds_in_between() {
        let mut tx = GccSender::new(1.0e6);
        tx.on_receiver_report(0.05, SimDuration::from_millis(60));
        assert_eq!(tx.target_rate_bps(), 1.0e6);
    }

    #[test]
    fn remb_caps_the_sender() {
        let mut tx = GccSender::new(5.0e6);
        tx.on_remb(Remb { rate_bps: 2.0e6, at: SimTime::ZERO });
        assert_eq!(tx.target_rate_bps(), 2.0e6);
        // Loss controller can go lower than the REMB.
        for _ in 0..20 {
            tx.on_receiver_report(0.3, SimDuration::from_millis(60));
        }
        assert!(tx.target_rate_bps() < 2.0e6);
    }

    #[test]
    fn rtt_tracked_from_reports() {
        let mut tx = GccSender::new(1.0e6);
        tx.on_receiver_report(0.0, SimDuration::from_millis(150));
        assert_eq!(tx.rtt(), SimDuration::from_millis(150));
    }

    #[test]
    fn rates_stay_clamped() {
        let mut tx = GccSender::new(1.0e6);
        for _ in 0..500 {
            tx.on_receiver_report(0.0, SimDuration::from_millis(60));
        }
        assert!(tx.target_rate_bps() <= 30.0e6);
        let mut rx = GccReceiver::new(1.0e6);
        drive(&mut rx, 40, 28, |f| 50 + f * 20);
        let remb = rx.poll_remb(SimTime::from_secs(60)).unwrap();
        assert!(remb.rate_bps >= 50_000.0);
    }
}
