//! RTP packetization, reassembly, and NACK-based retransmission.
//!
//! Encoded frames are split into MTU-sized RTP packets. The receiver
//! reassembles frames, detecting sequence gaps; missing packets are NACKed
//! and the sender retransmits them at pacer-front priority (WebRTC
//! behaviour). A frame is *complete* when all of its packets have arrived;
//! it is *abandoned* — and counted as frozen — if it is still incomplete
//! after the abandon timeout (the jitter buffer gives up and the viewer
//! requests a keyframe).

use poi360_net::packet::{FrameTag, Packet};
use poi360_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Payload carried per RTP packet (1200 B MTU-safe payload).
pub const MAX_PAYLOAD: u32 = 1_200;

/// Header overhead per packet: RTP (12) + UDP (8) + IPv4 (20).
pub const HEADER_BYTES: u32 = 40;

/// Splits frames into RTP packets.
#[derive(Debug, Default)]
pub struct Packetizer {
    next_seq: u64,
}

impl Packetizer {
    /// Create a packetizer.
    pub fn new() -> Self {
        Packetizer::default()
    }

    /// Next sequence number to be issued.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Packetize a frame of `payload_bytes` captured at `sent_at`.
    pub fn packetize(
        &mut self,
        frame_no: u64,
        payload_bytes: u32,
        sent_at: SimTime,
    ) -> Vec<Packet> {
        let count = payload_bytes.div_ceil(MAX_PAYLOAD).max(1);
        let mut remaining = payload_bytes;
        (0..count)
            .map(|index| {
                let chunk = remaining.min(MAX_PAYLOAD);
                remaining -= chunk;
                let seq = self.next_seq;
                self.next_seq += 1;
                Packet::video(
                    seq,
                    chunk + HEADER_BYTES,
                    sent_at,
                    FrameTag { frame_no, index, count },
                )
            })
            .collect()
    }
}

/// A fully reassembled frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReassembledFrame {
    /// Frame number.
    pub frame_no: u64,
    /// Capture timestamp carried by the packets.
    pub sent_at: SimTime,
    /// Arrival time of the final packet.
    pub completed_at: SimTime,
    /// Total wire bytes received for the frame.
    pub bytes: u32,
    /// Whether any packet of the frame needed retransmission.
    pub suffered_loss: bool,
}

#[derive(Debug)]
struct PartialFrame {
    tag_count: u32,
    received: Vec<bool>,
    bytes: u32,
    sent_at: SimTime,
    first_arrival: SimTime,
    suffered_loss: bool,
}

/// Receiver-side reassembly with gap detection.
#[derive(Debug)]
pub struct Reassembler {
    partial: BTreeMap<u64, PartialFrame>,
    /// Highest video seq seen, for gap detection.
    highest_seq: Option<u64>,
    /// seq -> (frame_no, index) of packets presumed lost, with NACK state.
    missing: BTreeMap<u64, MissingPacket>,
    abandon_after: SimDuration,
    completed: u64,
    abandoned: u64,
}

#[derive(Clone, Copy, Debug)]
struct MissingPacket {
    frame_no: u64,
    last_nack: Option<SimTime>,
    nacks_sent: u32,
}

/// A NACK request for one missing packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nack {
    /// Sequence number to retransmit.
    pub seq: u64,
}

impl Reassembler {
    /// Create a reassembler; frames still incomplete `abandon_after` their
    /// first packet are dropped (and reported).
    pub fn new(abandon_after: SimDuration) -> Self {
        Reassembler {
            partial: BTreeMap::new(),
            highest_seq: None,
            missing: BTreeMap::new(),
            abandon_after,
            completed: 0,
            abandoned: 0,
        }
    }

    /// Frames completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Frames abandoned so far.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Currently outstanding missing packets.
    pub fn missing_count(&self) -> usize {
        self.missing.len()
    }

    /// Accept a video packet; returns the frame if this completed it.
    pub fn on_packet(&mut self, pkt: &Packet, arrival: SimTime) -> Option<ReassembledFrame> {
        let tag = pkt.frame.expect("reassembler only accepts video packets");

        // Gap detection on the sequence stream (retransmissions exempt).
        if !pkt.retransmit {
            if let Some(hi) = self.highest_seq {
                if pkt.seq > hi + 1 {
                    for gap_seq in (hi + 1)..pkt.seq {
                        // The gap may span frames; attribute by seq order —
                        // actual frame attribution is refined when the
                        // retransmission arrives, so frame_no here is a hint.
                        self.missing.entry(gap_seq).or_insert(MissingPacket {
                            frame_no: tag.frame_no,
                            last_nack: None,
                            nacks_sent: 0,
                        });
                    }
                }
                self.highest_seq = Some(hi.max(pkt.seq));
            } else {
                self.highest_seq = Some(pkt.seq);
            }
        }
        // A packet (retransmitted or late) clears its missing record.
        let was_missing = self.missing.remove(&pkt.seq).is_some();

        let entry = self.partial.entry(tag.frame_no).or_insert_with(|| PartialFrame {
            tag_count: tag.count,
            received: vec![false; tag.count as usize],
            bytes: 0,
            sent_at: pkt.sent_at,
            first_arrival: arrival,
            suffered_loss: false,
        });
        entry.suffered_loss |= was_missing || pkt.retransmit;
        if !entry.received[tag.index as usize] {
            entry.received[tag.index as usize] = true;
            entry.bytes += pkt.bytes;
        }
        if entry.received.iter().all(|&r| r) {
            let done = self.partial.remove(&tag.frame_no).expect("entry exists");
            self.completed += 1;
            debug_assert_eq!(done.tag_count as usize, done.received.len());
            return Some(ReassembledFrame {
                frame_no: tag.frame_no,
                sent_at: done.sent_at,
                completed_at: arrival,
                bytes: done.bytes,
                suffered_loss: done.suffered_loss,
            });
        }
        None
    }

    /// Collect NACKs to send at `now`: new gaps immediately, outstanding
    /// ones re-NACKed every `renack_every`. Gives up after `max_nacks`.
    pub fn poll_nacks(
        &mut self,
        now: SimTime,
        renack_every: SimDuration,
        max_nacks: u32,
    ) -> Vec<Nack> {
        let mut out = Vec::new();
        for (&seq, m) in self.missing.iter_mut() {
            let due = match m.last_nack {
                None => true,
                Some(last) => now.saturating_since(last) >= renack_every,
            };
            if due && m.nacks_sent < max_nacks {
                m.last_nack = Some(now);
                m.nacks_sent += 1;
                out.push(Nack { seq });
            }
        }
        out
    }

    /// Abandon frames that have been incomplete too long; returns the frame
    /// numbers dropped. Their missing packets stop being NACKed.
    pub fn poll_abandoned(&mut self, now: SimTime) -> Vec<u64> {
        let deadline = self.abandon_after;
        let expired: Vec<u64> = self
            .partial
            .iter()
            .filter(|(_, p)| now.saturating_since(p.first_arrival) > deadline)
            .map(|(&no, _)| no)
            .collect();
        for no in &expired {
            self.partial.remove(no);
            self.abandoned += 1;
        }
        // Drop missing-packet state attributed to abandoned frames.
        self.missing.retain(|_, m| !expired.contains(&m.frame_no));
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reasm() -> Reassembler {
        Reassembler::new(SimDuration::from_millis(1_000))
    }

    #[test]
    fn packetizer_splits_and_pads() {
        let mut p = Packetizer::new();
        let pkts = p.packetize(0, 3_000, SimTime::ZERO);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].bytes, 1_200 + HEADER_BYTES);
        assert_eq!(pkts[2].bytes, 600 + HEADER_BYTES);
        let payload: u32 = pkts.iter().map(|p| p.bytes - HEADER_BYTES).sum();
        assert_eq!(payload, 3_000);
        // Tags consistent.
        for (k, pkt) in pkts.iter().enumerate() {
            let tag = pkt.frame.unwrap();
            assert_eq!(tag.index, k as u32);
            assert_eq!(tag.count, 3);
        }
    }

    #[test]
    fn zero_byte_frame_still_gets_one_packet() {
        let mut p = Packetizer::new();
        let pkts = p.packetize(1, 0, SimTime::ZERO);
        assert_eq!(pkts.len(), 1);
    }

    #[test]
    fn seqs_are_contiguous_across_frames() {
        let mut p = Packetizer::new();
        let a = p.packetize(0, 2_500, SimTime::ZERO);
        let b = p.packetize(1, 1_000, SimTime::ZERO);
        let seqs: Vec<u64> = a.iter().chain(b.iter()).map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn in_order_frame_completes() {
        let mut pz = Packetizer::new();
        let mut rs = reasm();
        let pkts = pz.packetize(0, 3_000, SimTime::from_millis(10));
        let mut frame = None;
        for (k, pkt) in pkts.iter().enumerate() {
            frame = rs.on_packet(pkt, SimTime::from_millis(20 + k as u64));
        }
        let f = frame.expect("frame completes on last packet");
        assert_eq!(f.frame_no, 0);
        assert_eq!(f.sent_at, SimTime::from_millis(10));
        assert_eq!(f.completed_at, SimTime::from_millis(22));
        assert!(!f.suffered_loss);
        assert_eq!(rs.completed(), 1);
    }

    #[test]
    fn gap_generates_nack_and_retransmit_completes() {
        let mut pz = Packetizer::new();
        let mut rs = reasm();
        let pkts = pz.packetize(0, 3_000, SimTime::ZERO);
        // Deliver 0 and 2; 1 is lost.
        rs.on_packet(&pkts[0], SimTime::from_millis(1));
        assert!(rs.on_packet(&pkts[2], SimTime::from_millis(2)).is_none());
        let nacks = rs.poll_nacks(SimTime::from_millis(3), SimDuration::from_millis(100), 5);
        assert_eq!(nacks, vec![Nack { seq: 1 }]);
        // Retransmission arrives.
        let mut retx = pkts[1].clone();
        retx.retransmit = true;
        let f = rs.on_packet(&retx, SimTime::from_millis(60)).expect("completes");
        assert!(f.suffered_loss);
        assert_eq!(rs.missing_count(), 0);
    }

    #[test]
    fn renack_respects_interval_and_cap() {
        let mut pz = Packetizer::new();
        let mut rs = reasm();
        let pkts = pz.packetize(0, 3_000, SimTime::ZERO);
        rs.on_packet(&pkts[0], SimTime::from_millis(1));
        rs.on_packet(&pkts[2], SimTime::from_millis(2));
        let every = SimDuration::from_millis(100);
        assert_eq!(rs.poll_nacks(SimTime::from_millis(3), every, 2).len(), 1);
        assert_eq!(rs.poll_nacks(SimTime::from_millis(50), every, 2).len(), 0);
        assert_eq!(rs.poll_nacks(SimTime::from_millis(103), every, 2).len(), 1);
        // Cap reached.
        assert_eq!(rs.poll_nacks(SimTime::from_millis(300), every, 2).len(), 0);
    }

    #[test]
    fn late_original_clears_missing_without_retransmit_flag() {
        let mut pz = Packetizer::new();
        let mut rs = reasm();
        let pkts = pz.packetize(0, 3_000, SimTime::ZERO);
        rs.on_packet(&pkts[0], SimTime::from_millis(1));
        rs.on_packet(&pkts[2], SimTime::from_millis(2));
        assert_eq!(rs.missing_count(), 1);
        // The "lost" packet was merely reordered… except pipes preserve
        // order in this workspace; still, the reassembler must handle it.
        let f = rs.on_packet(&pkts[1], SimTime::from_millis(5)).expect("completes");
        assert!(f.suffered_loss, "a detected gap marks the frame");
        assert_eq!(rs.missing_count(), 0);
    }

    #[test]
    fn abandon_times_out_incomplete_frames() {
        let mut pz = Packetizer::new();
        let mut rs = Reassembler::new(SimDuration::from_millis(500));
        let pkts = pz.packetize(7, 3_000, SimTime::ZERO);
        rs.on_packet(&pkts[0], SimTime::from_millis(10));
        assert!(rs.poll_abandoned(SimTime::from_millis(400)).is_empty());
        let dropped = rs.poll_abandoned(SimTime::from_millis(511));
        assert_eq!(dropped, vec![7]);
        assert_eq!(rs.abandoned(), 1);
    }

    #[test]
    fn duplicate_packets_do_not_double_count() {
        let mut pz = Packetizer::new();
        let mut rs = reasm();
        let pkts = pz.packetize(0, 2_000, SimTime::ZERO);
        rs.on_packet(&pkts[0], SimTime::from_millis(1));
        rs.on_packet(&pkts[0], SimTime::from_millis(2));
        let f = rs.on_packet(&pkts[1], SimTime::from_millis(3)).expect("completes");
        assert_eq!(f.bytes, pkts[0].bytes + pkts[1].bytes);
    }

    #[test]
    fn interleaved_frames_complete_independently() {
        let mut pz = Packetizer::new();
        let mut rs = reasm();
        let a = pz.packetize(0, 2_400, SimTime::ZERO);
        let b = pz.packetize(1, 2_400, SimTime::from_millis(28));
        rs.on_packet(&a[0], SimTime::from_millis(30));
        rs.on_packet(&b[0], SimTime::from_millis(31));
        assert!(rs.on_packet(&b[1], SimTime::from_millis(32)).is_some());
        assert!(rs.on_packet(&a[1], SimTime::from_millis(33)).is_some());
        assert_eq!(rs.completed(), 2);
    }
}
