//! Property-based tests for the 360° video substrate, on the in-repo
//! `poi360_testkit` harness (64+ seeded cases per property).

use poi360_sim::time::SimTime;
use poi360_testkit::{prop_assert, prop_assert_eq, prop_check};
use poi360_video::compression::CompressionMode;
use poi360_video::content::ContentModel;
use poi360_video::encoder::{Encoder, EncoderConfig};
use poi360_video::frame::{TileGrid, TilePos};
use poi360_video::rd::RdModel;
use poi360_video::roi::Roi;

/// Encoded frames are well-formed for any target bitrate and ROI:
/// 96 tiles, positive size, tile bits summing to the frame size.
#[test]
fn encoded_frames_are_well_formed() {
    prop_check!(64, |g| {
        let rate_kbps = g.u64_in(50, 19_999);
        let i = g.u8_in(0, 11);
        let j = g.u8_in(0, 7);
        let c = g.f64_in(1.05, 1.9);
        let seed = g.any_u64();
        let grid = TileGrid::POI360;
        let mut enc = Encoder::new(EncoderConfig::default(), seed);
        let content = ContentModel::new(grid, seed);
        let roi = Roi::at_tile(&grid, TilePos::new(i, j));
        let matrix = CompressionMode::protected_geometric(c, 1, 1).matrix(&grid, roi.center);
        let frame = enc.encode(SimTime::ZERO, roi, &matrix, &content, rate_kbps as f64 * 1e3);
        prop_assert_eq!(frame.tiles.len(), 96);
        prop_assert!(frame.bytes > 0);
        let bits: f64 = frame.tiles.iter().map(|t| t.bits).sum();
        prop_assert!((bits / 8.0 - frame.bytes as f64).abs() < 2.0);
        for t in &frame.tiles {
            prop_assert!(t.bits >= 0.0);
            prop_assert!(t.level >= 1.0);
        }
        Ok(())
    });
}

/// Region PSNR is bounded and monotone in the bitrate (same seed).
#[test]
fn psnr_bounded_and_rate_monotone() {
    prop_check!(96, |g| {
        let i = g.u8_in(0, 11);
        let j = g.u8_in(0, 7);
        let grid = TileGrid::POI360;
        let rd = RdModel::default();
        let geo = EncoderConfig::default().geometry;
        let content = ContentModel::new(grid, 3);
        let roi = Roi::at_tile(&grid, TilePos::new(i, j));
        let matrix = CompressionMode::protected_geometric(1.4, 1, 1).matrix(&grid, roi.center);
        let mut psnrs = Vec::new();
        for rate in [0.3e6, 1.0e6, 3.0e6] {
            // Jitter-free encoder so monotonicity is exact.
            let cfg = EncoderConfig { rate_jitter_std: 0.0, ..Default::default() };
            let mut enc = Encoder::new(cfg, 3);
            let f = enc.encode(SimTime::ZERO, roi, &matrix, &content, rate);
            let p = f.region_psnr(&rd, &geo, roi.fov_tiles(&grid, 1, 1));
            prop_assert!((5.0..=55.0).contains(&p), "psnr {p}");
            psnrs.push(p);
        }
        prop_assert!(psnrs[0] <= psnrs[1] + 1e-9 && psnrs[1] <= psnrs[2] + 1e-9, "{psnrs:?}");
        Ok(())
    });
}

/// The R-D model is monotone: more bits never hurt, deeper spatial
/// compression never helps.
#[test]
fn rd_model_monotone() {
    prop_check!(128, |g| {
        let w = g.f64_in(0.3, 2.5);
        let bpp = g.f64_in(0.005, 0.5);
        let l = g.f64_in(1.0, 32.0);
        let rd = RdModel::default();
        prop_assert!(rd.tile_psnr(w, bpp * 1.5, l) >= rd.tile_psnr(w, bpp, l) - 1e-9);
        prop_assert!(rd.tile_psnr(w, bpp, l + 1.0) <= rd.tile_psnr(w, bpp, l) + 1e-9);
        Ok(())
    });
}

/// FoV tile sets: always contain the center, never exceed the 3x3
/// bound, and stay within the grid.
#[test]
fn fov_tiles_well_formed() {
    prop_check!(128, |g| {
        let yaw = g.f64_in(-720.0, 720.0);
        let pitch = g.f64_in(-100.0, 100.0);
        let grid = TileGrid::POI360;
        let roi = Roi::from_angles(&grid, yaw, pitch);
        let tiles = roi.fov_tiles(&grid, 1, 1);
        prop_assert!(tiles.contains(&roi.center));
        prop_assert!(tiles.len() <= 9 && tiles.len() >= 6);
        for t in tiles {
            prop_assert!(t.i < grid.cols && t.j < grid.rows);
        }
        Ok(())
    });
}

/// Mode load factors stay in (0, 1] and shrink as C grows.
#[test]
fn load_factor_behaviour() {
    prop_check!(128, |g| {
        let c = g.f64_in(1.05, 2.0);
        let i = g.u8_in(0, 11);
        let j = g.u8_in(0, 7);
        let grid = TileGrid::POI360;
        let center = TilePos::new(i, j);
        let lf = CompressionMode::protected_geometric(c, 1, 1).load_factor(&grid, center);
        prop_assert!(lf > 0.0 && lf <= 1.0);
        let heavier =
            CompressionMode::protected_geometric(c + 0.3, 1, 1).load_factor(&grid, center);
        prop_assert!(heavier <= lf + 1e-12);
        Ok(())
    });
}

/// Content weights are always positive and bounded after arbitrary
/// evolution.
#[test]
fn content_weights_bounded() {
    prop_check!(64, |g| {
        let seed = g.any_u64();
        let frames = g.usize_in(0, 299);
        let mut content = ContentModel::new(TileGrid::POI360, seed);
        for _ in 0..frames {
            content.advance_frame();
        }
        for pos in TileGrid::POI360.iter() {
            let w = content.weight(pos);
            prop_assert!(w > 0.05 && w < 5.0, "weight {w}");
        }
        Ok(())
    });
}
