//! Property tests for the perceptual tiling layer (ISSUE 9 satellites):
//! exact bit-budget conservation, tile-order invariance of sensitivity
//! maps, and the uniform-sensitivity reduction laws.

use poi360_testkit::{prop_assert, prop_assert_eq, prop_check};
use poi360_video::compression::CompressionMatrix;
use poi360_video::frame::{TileGrid, TilePos};
use poi360_video::perceptual::{allocate_bits, ghosh_matrix, weighted_matrix};
use poi360_video::SensitivityMap;

#[test]
fn allocate_bits_conserves_the_budget_exactly() {
    prop_check!("alloc_conservation", 128, |g| {
        let n = g.usize_in(1, 96);
        // Mix healthy, zero, and degenerate weights.
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                if g.chance(0.1) {
                    0.0
                } else if g.chance(0.05) {
                    f64::NAN
                } else {
                    g.f64_in(0.001, 50.0)
                }
            })
            .collect();
        let budget = g.u64_in(0, 5_000_000);
        let floor = g.u64_in(0, 20_000);
        let out = allocate_bits(&weights, budget, floor);
        prop_assert_eq!(out.len(), n);
        prop_assert_eq!(out.iter().sum::<u64>(), budget);
        let base = floor.min(budget / n as u64);
        prop_assert!(out.iter().all(|&b| b >= base), "every tile gets at least the shared floor");
        Ok(())
    });
}

#[test]
fn sensitivity_map_is_invariant_to_tile_iteration_order() {
    prop_check!("pano_order_invariance", 96, |g| {
        let grid = TileGrid::default();
        let mut pairs: Vec<(TilePos, f64)> =
            (0..grid.tile_count()).map(|k| (grid.pos(k), g.f64_in(0.05, 4.0))).collect();
        let forward = SensitivityMap::from_tiles(&grid, &pairs);
        // Fisher-Yates with the same generator: an arbitrary permutation.
        for k in (1..pairs.len()).rev() {
            pairs.swap(k, g.index(k + 1));
        }
        let shuffled = SensitivityMap::from_tiles(&grid, &pairs);
        for k in 0..grid.tile_count() {
            let pos = grid.pos(k);
            prop_assert_eq!(forward.sensitivity(pos), shuffled.sensitivity(pos));
            prop_assert_eq!(forward.weight(pos), shuffled.weight(pos));
        }
        Ok(())
    });
}

#[test]
fn uniform_sensitivity_reduces_both_modulations_to_the_base_matrix() {
    prop_check!("uniform_reduction", 96, |g| {
        let grid = TileGrid::default();
        let base = CompressionMatrix::uniform(&grid, g.f64_in(1.0, 12.0));
        let sens = SensitivityMap::uniform(&grid);
        let pano = weighted_matrix(&base, &sens);
        prop_assert_eq!(pano.levels(), base.levels());
        let ghosh = ghosh_matrix(&base, &sens);
        for (a, b) in ghosh.levels().iter().zip(base.levels()) {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "Ghosh must reduce to base");
        }
        Ok(())
    });
}
