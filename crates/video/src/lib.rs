//! 360° video substrate for the POI360 reproduction.
//!
//! The paper streams live 4K equirectangular video, spatially segmented into
//! 12×8 tiles which are compressed individually based on their distance to
//! the viewer's region of interest (ROI) — paper §4.1 and Fig. 8. This crate
//! models that pipeline at the rate–distortion level:
//!
//! * [`frame`] — frame geometry: the 4K equirectangular canvas and the
//!   12×8 [`frame::TileGrid`].
//! * [`roi`] — ROI coordinates and the cyclic (yaw wraps) tile distance.
//! * [`compression`] — compression levels `l_ij = C^(dx+dy)` (paper Eq. 1),
//!   the compression matrix, and the K pre-defined compression modes.
//! * [`content`] — synthetic per-tile texture complexity evolving over time;
//!   this substitutes for the paper's real camera feed.
//! * [`perceptual`] — related-work tile policies: Pano-style
//!   quality-sensitivity weighting and Ghosh-style tile-rate allocation,
//!   both expressed as modulations of a base compression matrix.
//! * [`rd`] — the rate–distortion model translating per-tile bits and
//!   compression level into MSE/PSNR.
//! * [`encoder`] — the frame-level encoder: allocates a bitrate budget
//!   across tiles, applies the R-D model, and emits [`encoder::EncodedFrame`]s
//!   that embed the compression matrix and the sender's ROI knowledge
//!   exactly as the paper's prototype embeds them in the canvas (§5).
//! * [`timestamp`] — the color-block timestamp codec the paper uses to
//!   measure end-to-end frame delay (§5).
//!
//! A real VP8 encoder is *not* implemented: every evaluation metric in the
//! paper (ROI PSNR, MOS, compression-level stability, frame delay, freeze
//! ratio) depends only on how many bits each tile gets and at what spatial
//! level it was encoded, which is exactly what the R-D model captures. This
//! substitution is recorded in DESIGN.md §6.

pub mod compression;
pub mod content;
pub mod encoder;
pub mod frame;
pub mod perceptual;
pub mod rd;
pub mod roi;
pub mod timestamp;

pub use compression::{CompressionMatrix, CompressionMode};
pub use content::ContentModel;
pub use encoder::{EncodedFrame, Encoder, EncoderConfig};
pub use frame::{FrameGeometry, TileGrid, TilePos};
pub use perceptual::SensitivityMap;
pub use rd::RdModel;
pub use roi::Roi;
