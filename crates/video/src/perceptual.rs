//! Perceptual tile weighting and tile-budget allocation (related work).
//!
//! Two alternatives to the paper's pure distance-based compression matrix,
//! both expressed as *modulations of a base matrix* so they plug into the
//! existing `CompressionPolicy` seam without touching the encoder:
//!
//! * **Pano-style sensitivity weighting** ([`SensitivityMap`] +
//!   [`weighted_matrix`]): each tile carries a quality-sensitivity score
//!   `s_t` (how much a quality change there is actually perceived). The
//!   base matrix's level at tile `t` is divided by the *normalized* weight
//!   `m_t = s_t / mean(s)`, so high-sensitivity tiles get finer quality
//!   and low-sensitivity tiles coarser, at an unchanged overall budget to
//!   first order. A uniform sensitivity map has `m_t = 1` everywhere and
//!   reproduces the base matrix bit for bit.
//! * **Ghosh-style tile-rate optimization** ([`ghosh_matrix`] +
//!   [`allocate_bits`]): treat the base matrix's per-tile payload shares
//!   `p_t ∝ 1/l_t` as a bit budget, re-split that budget in proportion to
//!   `p_t · s_t` (the water-filling optimum for log-concave per-tile
//!   utility weighted by sensitivity), and convert the new shares back to
//!   levels. [`allocate_bits`] is the discrete form: a largest-remainder
//!   split that conserves the bit budget *exactly* — the property the
//!   tests pin.
//!
//! Everything here is a pure function of its inputs: sensitivity maps are
//! indexed by tile, never accumulated in iteration order, so construction
//! order cannot leak into the weights.

use crate::compression::{CompressionMatrix, L_MIN};
use crate::frame::{TileGrid, TilePos};

/// Per-tile quality-sensitivity scores over a grid.
#[derive(Clone, Debug, PartialEq)]
pub struct SensitivityMap {
    grid: TileGrid,
    /// Row-major scores, `sens[grid.index(pos)]`, all > 0.
    sens: Vec<f64>,
}

impl SensitivityMap {
    /// Uniform sensitivity: every tile equally important. Both policies
    /// reduce to their base matrix under this map.
    pub fn uniform(grid: &TileGrid) -> Self {
        SensitivityMap { grid: *grid, sens: vec![1.0; grid.tile_count()] }
    }

    /// Pano-style viewing-probability falloff around the ROI center:
    /// `s_t = 1 / (1 + a·d_t)` with `d_t` the cyclic tile distance. Tiles
    /// under the viewer's gaze are most sensitive; the far side of the
    /// panorama barely registers.
    pub fn pano(grid: &TileGrid, roi_center: TilePos) -> Self {
        const A: f64 = 0.25;
        let mut sens = vec![0.0; grid.tile_count()];
        for pos in grid.iter() {
            let d = grid.distance(pos, roi_center) as f64;
            sens[grid.index(pos)] = 1.0 / (1.0 + A * d);
        }
        SensitivityMap { grid: *grid, sens }
    }

    /// Build from explicit per-tile scores in *any* order. Scores are
    /// written by tile index, so permuting `pairs` cannot change the map;
    /// the order-invariance property test pins this. Tiles not named keep
    /// sensitivity 1; scores must be positive.
    pub fn from_tiles(grid: &TileGrid, pairs: &[(TilePos, f64)]) -> Self {
        let mut sens = vec![1.0; grid.tile_count()];
        for &(pos, s) in pairs {
            assert!(s > 0.0, "sensitivity must be positive ({s})");
            sens[grid.index(pos)] = s;
        }
        SensitivityMap { grid: *grid, sens }
    }

    /// The grid this map is defined over.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Raw sensitivity at a tile.
    pub fn sensitivity(&self, pos: TilePos) -> f64 {
        self.sens[self.grid.index(pos)]
    }

    /// Mean sensitivity, computed in fixed row-major order.
    pub fn mean(&self) -> f64 {
        self.sens.iter().sum::<f64>() / self.sens.len() as f64
    }

    /// Normalized Pano weight `m_t = s_t / mean(s)`: > 1 where quality is
    /// noticed, < 1 where it is not, exactly 1 under a uniform map.
    pub fn weight(&self, pos: TilePos) -> f64 {
        self.sensitivity(pos) / self.mean()
    }
}

/// Pano-style modulation: divide each base level by the tile's normalized
/// weight (finer quality where sensitivity is high), floored at [`L_MIN`].
/// A uniform map reproduces `base` exactly.
pub fn weighted_matrix(base: &CompressionMatrix, sens: &SensitivityMap) -> CompressionMatrix {
    assert_eq!(base.grid, *sens.grid());
    let mean = sens.mean();
    let levels: Vec<f64> = base
        .grid
        .iter()
        .map(|pos| {
            let m = sens.sensitivity(pos) / mean;
            (base.level(pos) / m).max(L_MIN)
        })
        .collect();
    CompressionMatrix::from_levels(base.grid, base.roi_center, levels)
}

/// Ghosh-style tile-rate optimization: re-split the base matrix's payload
/// budget `Q = Σ 1/l_t` in proportion to `(1/l_t)·s_t`, and convert the new
/// shares back to levels `l'_t = 1/(w_t·Q)`, floored at [`L_MIN`]. A
/// uniform map reproduces `base` to floating-point epsilon.
pub fn ghosh_matrix(base: &CompressionMatrix, sens: &SensitivityMap) -> CompressionMatrix {
    assert_eq!(base.grid, *sens.grid());
    let shares: Vec<f64> = base.levels().iter().map(|&l| 1.0 / l).collect();
    let q: f64 = shares.iter().sum();
    let weighted: Vec<f64> =
        base.grid.iter().map(|pos| shares[base.grid.index(pos)] * sens.sensitivity(pos)).collect();
    let total: f64 = weighted.iter().sum();
    let levels: Vec<f64> = weighted.iter().map(|&w| (total / (w * q)).max(L_MIN)).collect();
    CompressionMatrix::from_levels(base.grid, base.roi_center, levels)
}

/// Split an integer bit budget across tiles in proportion to `weights`,
/// conserving the budget *exactly* (largest-remainder method). Every tile
/// is first guaranteed `floor_bits` (scaled down uniformly if the budget
/// cannot cover it); the remainder is split proportionally, fractional
/// bits going to the largest remainders with index order breaking ties.
/// Non-finite or negative weights count as zero; an all-zero weight vector
/// degrades to an equal split.
pub fn allocate_bits(weights: &[f64], budget_bits: u64, floor_bits: u64) -> Vec<u64> {
    let n = weights.len() as u64;
    if n == 0 {
        return Vec::new();
    }
    let base = floor_bits.min(budget_bits / n);
    let spread = budget_bits - base * n;
    let clean: Vec<f64> =
        weights.iter().map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 }).collect();
    let total: f64 = clean.iter().sum();
    let frac: Vec<f64> = if total > 0.0 {
        clean.iter().map(|&w| w / total).collect()
    } else {
        vec![1.0 / n as f64; weights.len()]
    };
    let mut out: Vec<u64> = Vec::with_capacity(weights.len());
    let mut rem: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut given: u64 = 0;
    for (t, &f) in frac.iter().enumerate() {
        let ideal = spread as f64 * f;
        let whole = (ideal.floor() as u64).min(spread);
        given += whole;
        out.push(base + whole);
        rem.push((t, ideal - whole as f64));
    }
    // Largest remainders first; tie on lower tile index. fp drift can
    // leave up to `n` leftover bits, so cycle until they are all placed.
    rem.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut leftover = spread - given;
    while leftover > 0 {
        for &(t, _) in &rem {
            if leftover == 0 {
                break;
            }
            out[t] += 1;
            leftover -= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression::CompressionMode;

    fn base() -> CompressionMatrix {
        CompressionMode::protected_geometric(1.5, 1, 1)
            .matrix(&TileGrid::POI360, TilePos::new(6, 4))
    }

    #[test]
    fn uniform_sensitivity_reproduces_base_exactly() {
        let b = base();
        let s = SensitivityMap::uniform(&TileGrid::POI360);
        let w = weighted_matrix(&b, &s);
        assert_eq!(w.levels(), b.levels(), "Pano under uniform s must be bitwise identical");
        let g = ghosh_matrix(&b, &s);
        for pos in TileGrid::POI360.iter() {
            let (a, e) = (g.level(pos), b.level(pos));
            assert!((a - e).abs() <= 1e-9 * e.max(1.0), "{pos:?}: {a} vs {e}");
        }
    }

    #[test]
    fn pano_map_peaks_at_the_roi() {
        let g = TileGrid::POI360;
        let center = TilePos::new(3, 3);
        let s = SensitivityMap::pano(&g, center);
        assert!(s.weight(center) > 1.0, "gaze tile must weigh above mean");
        assert!(s.weight(TilePos::new(9, 7)) < 1.0, "far tile must weigh below mean");
        // Sensitivity is a pure function of distance.
        for a in g.iter() {
            for b in g.iter() {
                if g.distance(a, center) == g.distance(b, center) {
                    assert_eq!(s.sensitivity(a), s.sensitivity(b));
                }
            }
        }
    }

    #[test]
    fn weighting_refines_sensitive_tiles_and_coarsens_the_rest() {
        let b = base();
        let s = SensitivityMap::pano(&TileGrid::POI360, b.roi_center);
        let w = weighted_matrix(&b, &s);
        // A mid-distance tile (base level > L_MIN, weight > 1) is refined.
        let near = TilePos::new(8, 4);
        assert!(s.weight(near) > 1.0 && b.level(near) > L_MIN);
        assert!(w.level(near) < b.level(near));
        // The far side (weight < 1) is coarsened.
        let far = TilePos::new(0, 7);
        assert!(s.weight(far) < 1.0);
        assert!(w.level(far) > b.level(far));
        // Levels never dip below the identity level.
        assert!(w.levels().iter().all(|&l| l >= L_MIN));
    }

    #[test]
    fn ghosh_shifts_share_toward_sensitive_tiles() {
        let b = base();
        let s = SensitivityMap::pano(&TileGrid::POI360, b.roi_center);
        let g = ghosh_matrix(&b, &s);
        let near = TilePos::new(8, 4);
        let far = TilePos::new(0, 7);
        // Share of a tile ∝ 1/level: sensitive tiles must gain share.
        assert!(1.0 / g.level(near) > 1.0 / b.level(near), "{}", g.level(near));
        assert!(1.0 / g.level(far) < 1.0 / b.level(far), "{}", g.level(far));
        assert!(g.levels().iter().all(|&l| l >= L_MIN));
    }

    #[test]
    fn from_tiles_is_input_order_invariant() {
        let g = TileGrid::POI360;
        let mut pairs: Vec<(TilePos, f64)> =
            g.iter().map(|p| (p, 1.0 + (g.index(p) % 7) as f64 * 0.5)).collect();
        let forward = SensitivityMap::from_tiles(&g, &pairs);
        pairs.reverse();
        let backward = SensitivityMap::from_tiles(&g, &pairs);
        assert_eq!(forward, backward);
    }

    #[test]
    fn allocate_bits_conserves_budget() {
        let w = [3.0, 1.0, 0.0, 5.5, 0.25];
        for budget in [0u64, 1, 7, 1_000, 999_983] {
            let bits = allocate_bits(&w, budget, 100);
            assert_eq!(bits.iter().sum::<u64>(), budget, "budget {budget}");
        }
    }

    #[test]
    fn allocate_bits_honors_floor_when_affordable() {
        let bits = allocate_bits(&[10.0, 1.0, 1.0], 6_000, 500);
        assert!(bits.iter().all(|&b| b >= 500), "{bits:?}");
        assert_eq!(bits.iter().sum::<u64>(), 6_000);
        assert!(bits[0] > bits[1]);
    }

    #[test]
    fn allocate_bits_equal_split_on_degenerate_weights() {
        let bits = allocate_bits(&[0.0, f64::NAN, -3.0, f64::INFINITY], 10, 0);
        assert_eq!(bits.iter().sum::<u64>(), 10);
        let (min, max) = (bits.iter().min().unwrap(), bits.iter().max().unwrap());
        assert!(max - min <= 1, "{bits:?}");
    }

    #[test]
    fn allocate_bits_empty() {
        assert!(allocate_bits(&[], 1_000, 10).is_empty());
    }
}
