//! Color-block timestamp codec (paper §5, "End-to-end video frame delay
//! measurement").
//!
//! The prototype embeds the millisecond sending timestamp into the frame by
//! painting one colored square per decimal digit, mapping digits 0–9 to ten
//! colors uniformly separated in RGB space; the receiver averages the pixels
//! of each block and maps the average color back to a digit. We reproduce
//! the codec — including its robustness to the compression noise that the
//! averaging step defends against — because the measurement plane is part of
//! the system under test.

use poi360_sim::rng::SimRng;
use poi360_sim::time::SimTime;

/// One RGB color, 8 bits per channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    fn dist2(self, other: Rgb) -> u32 {
        let dr = self.r as i32 - other.r as i32;
        let dg = self.g as i32 - other.g as i32;
        let db = self.b as i32 - other.b as i32;
        (dr * dr + dg * dg + db * db) as u32
    }
}

/// The ten digit colors: corners of the RGB cube plus midpoints, mutually
/// well separated so per-block averaging under codec noise still decodes.
pub const DIGIT_COLORS: [Rgb; 10] = [
    Rgb { r: 0, g: 0, b: 0 },       // 0
    Rgb { r: 255, g: 0, b: 0 },     // 1
    Rgb { r: 0, g: 255, b: 0 },     // 2
    Rgb { r: 0, g: 0, b: 255 },     // 3
    Rgb { r: 255, g: 255, b: 0 },   // 4
    Rgb { r: 255, g: 0, b: 255 },   // 5
    Rgb { r: 0, g: 255, b: 255 },   // 6
    Rgb { r: 255, g: 255, b: 255 }, // 7
    Rgb { r: 128, g: 128, b: 128 }, // 8
    Rgb { r: 255, g: 128, b: 0 },   // 9
];

/// Number of decimal digits encoded; 10 digits of milliseconds cover ~115
/// days of session time.
pub const DIGITS: usize = 10;

/// Encode a timestamp into its sequence of digit blocks (most significant
/// digit first).
pub fn encode(ts: SimTime) -> [Rgb; DIGITS] {
    let mut ms = ts.as_millis();
    let mut out = [DIGIT_COLORS[0]; DIGITS];
    for slot in out.iter_mut().rev() {
        *slot = DIGIT_COLORS[(ms % 10) as usize];
        ms /= 10;
    }
    out
}

/// Decode a sequence of (possibly noisy) block-average colors back to a
/// timestamp by nearest-color matching.
pub fn decode(blocks: &[Rgb; DIGITS]) -> SimTime {
    let mut ms: u64 = 0;
    for block in blocks {
        let digit = DIGIT_COLORS
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.dist2(*block))
            .map(|(d, _)| d as u64)
            .expect("color table is non-empty");
        ms = ms * 10 + digit;
    }
    SimTime::from_millis(ms)
}

/// Simulate the channel the blocks survive: per-pixel compression noise that
/// the receiver averages over an `n`-pixel block, leaving Gaussian noise on
/// the block mean with std `sigma / sqrt(n)`.
pub fn corrupt(
    blocks: &[Rgb; DIGITS],
    pixel_noise_std: f64,
    block_pixels: u32,
    rng: &mut SimRng,
) -> [Rgb; DIGITS] {
    let sigma = pixel_noise_std / (block_pixels as f64).sqrt();
    let mut out = *blocks;
    for b in &mut out {
        let mut ch = |v: u8| -> u8 { (v as f64 + rng.gaussian() * sigma).clamp(0.0, 255.0) as u8 };
        *b = Rgb { r: ch(b.r), g: ch(b.g), b: ch(b.b) };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_clean() {
        for ms in [0u64, 1, 42, 460, 123_456_789, 9_999_999_999] {
            let ts = SimTime::from_millis(ms);
            assert_eq!(decode(&encode(ts)).as_millis(), ms);
        }
    }

    #[test]
    fn colors_are_well_separated() {
        let mut min = u32::MAX;
        for (i, a) in DIGIT_COLORS.iter().enumerate() {
            for b in &DIGIT_COLORS[i + 1..] {
                min = min.min(a.dist2(*b));
            }
        }
        // Worst pair at least 110 apart in euclidean RGB distance.
        assert!(min >= 110 * 110, "min separation^2 = {min}");
    }

    #[test]
    fn survives_heavy_pixel_noise_via_averaging() {
        let mut rng = SimRng::from_seed(3);
        // 40 dB of per-pixel noise over a 32x32 block.
        for ms in [460u64, 1_234_567, 86_400_000] {
            let ts = SimTime::from_millis(ms);
            let noisy = corrupt(&encode(ts), 45.0, 32 * 32, &mut rng);
            assert_eq!(decode(&noisy).as_millis(), ms, "ms={ms}");
        }
    }

    #[test]
    fn tiny_blocks_can_fail_gracefully() {
        // With absurd noise and a 1-pixel block decoding may err — but it
        // must not panic and must return *some* timestamp.
        let mut rng = SimRng::from_seed(4);
        let noisy = corrupt(&encode(SimTime::from_millis(123)), 200.0, 1, &mut rng);
        let _ = decode(&noisy);
    }

    #[test]
    fn truncates_beyond_capacity() {
        // 11-digit millisecond values wrap on the top digit; the codec only
        // carries DIGITS digits, like the paper's fixed block row.
        let big = SimTime::from_millis(123_456_789_012);
        let decoded = decode(&encode(big));
        assert_eq!(decoded.as_millis(), 123_456_789_012 % 10_000_000_000);
    }
}
