//! Compression modes and the compression matrix (paper §4.1, Eq. 1).
//!
//! A *compression level* `l_ij` is the size ratio of a tile before and after
//! compression (`l = 1` means untouched). A *compression mode* `F` maps each
//! tile's distance from the ROI center to a level:
//!
//! ```text
//! l_ij = F(i - i*, j - j*) = C^((i-i*) + (j-j*))        (paper Eq. 1)
//! ```
//!
//! where distances are cyclic in x, absolute in y, and `C > 1` controls the
//! aggressiveness: a large `C` concentrates quality in a small ROI (sharp
//! falloff), a small `C` spreads quality across the panorama (smooth
//! falloff). The paper's prototype pre-defines K = 8 modes with
//! `C ∈ {1.1, 1.2, …, 1.8}`.
//!
//! Moving the ROI center under a fixed mode is a cyclic shift of the matrix,
//! which is how the paper describes matrix updates.

use crate::frame::{TileGrid, TilePos};

/// The lowest (identity) compression level, always assigned to the ROI
/// center tile.
pub const L_MIN: f64 = 1.0;

/// How a compression mode assigns levels by distance from the ROI center.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Falloff {
    /// Paper Eq. 1: `l = C^(dx+dy)` — geometric falloff with base `C`.
    Geometric {
        /// The aggressiveness constant `C > 1`.
        c: f64,
    },
    /// Eq. 1 falloff measured from the edge of a protected ROI *region*:
    /// tiles within the `(2·half_w+1) × (2·half_h+1)` region around the ROI
    /// center stay at `L_MIN`, and `l = C^(max(0,dx−half_w)+max(0,dy−half_h))`
    /// outside. This matches the paper's depiction of the ROI as a
    /// multi-tile high-quality region (Figs. 2–3): the viewer's whole FoV
    /// is protected, and the aggressiveness constant shapes the periphery.
    ProtectedGeometric {
        /// The aggressiveness constant `C > 1`.
        c: f64,
        /// Protected half-width in tiles.
        half_w: u8,
        /// Protected half-height in tiles.
        half_h: u8,
    },
    /// Two-level "crop" falloff used by the Conduit baseline: tiles within
    /// the ROI region stay at `L_MIN`, everything else gets a flat floor
    /// level (the paper ships non-ROI regions "with the lowest possible
    /// quality" instead of leaving them blank).
    TwoLevel {
        /// Half-width (in tiles) of the preserved ROI region.
        half_w: u8,
        /// Half-height (in tiles) of the preserved ROI region.
        half_h: u8,
        /// Compression level applied outside the ROI region.
        floor: f64,
    },
}

/// A compression mode: a named falloff shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompressionMode {
    /// Falloff shape.
    pub falloff: Falloff,
}

impl CompressionMode {
    /// Paper Eq. 1 mode with aggressiveness constant `C`.
    pub fn geometric(c: f64) -> Self {
        assert!(c > 1.0, "C must exceed 1 (C = {c})");
        CompressionMode { falloff: Falloff::Geometric { c } }
    }

    /// The Conduit-style two-level crop mode.
    pub fn two_level(half_w: u8, half_h: u8, floor: f64) -> Self {
        assert!(floor >= L_MIN);
        CompressionMode { falloff: Falloff::TwoLevel { half_w, half_h, floor } }
    }

    /// Eq. 1 falloff outside a protected FoV-sized region.
    pub fn protected_geometric(c: f64, half_w: u8, half_h: u8) -> Self {
        assert!(c > 1.0, "C must exceed 1 (C = {c})");
        CompressionMode { falloff: Falloff::ProtectedGeometric { c, half_w, half_h } }
    }

    /// The paper's K = 8 pre-defined adaptive modes, most aggressive first
    /// (`F_1` has `C = 1.8`, `F_8` has `C = 1.1`). §4.2 lists the modes "in
    /// the order of decreasing compression aggressiveness". All modes keep
    /// the viewer's 3×3-tile FoV region at full quality; `C` shapes how
    /// sharply quality falls off beyond it.
    pub fn poi360_modes() -> Vec<CompressionMode> {
        (0..8).map(|k| CompressionMode::protected_geometric(1.8 - 0.1 * k as f64, 1, 1)).collect()
    }

    /// The compression level this mode assigns at tile distance `(dx, dy)`
    /// from the ROI center.
    pub fn level_at(&self, dx: u8, dy: u8) -> f64 {
        match self.falloff {
            Falloff::Geometric { c } => c.powi(dx as i32 + dy as i32),
            Falloff::ProtectedGeometric { c, half_w, half_h } => {
                let ex = dx.saturating_sub(half_w) as i32;
                let ey = dy.saturating_sub(half_h) as i32;
                c.powi(ex + ey)
            }
            Falloff::TwoLevel { half_w, half_h, floor } => {
                if dx <= half_w && dy <= half_h {
                    L_MIN
                } else {
                    floor
                }
            }
        }
    }

    /// Build the full compression matrix for an ROI center.
    pub fn matrix(&self, grid: &TileGrid, roi_center: TilePos) -> CompressionMatrix {
        let mut levels = vec![0.0; grid.tile_count()];
        for pos in grid.iter() {
            let dx = grid.dx(pos.i, roi_center.i);
            let dy = grid.dy(pos.j, roi_center.j);
            levels[grid.index(pos)] = self.level_at(dx, dy);
        }
        CompressionMatrix { grid: *grid, roi_center, levels }
    }

    /// Mean of `1/l` over the whole grid for an ROI at the given center:
    /// the fraction of the raw spatial payload this mode retains, i.e. its
    /// traffic-load factor relative to uncompressed.
    pub fn load_factor(&self, grid: &TileGrid, roi_center: TilePos) -> f64 {
        let m = self.matrix(grid, roi_center);
        m.levels.iter().map(|&l| 1.0 / l).sum::<f64>() / m.levels.len() as f64
    }
}

/// The per-tile compression levels for one frame (paper's matrix `L`).
#[derive(Clone, Debug, PartialEq)]
pub struct CompressionMatrix {
    /// Grid geometry the matrix is defined over.
    pub grid: TileGrid,
    /// ROI center the matrix was built for (the sender's ROI knowledge).
    pub roi_center: TilePos,
    /// Row-major levels, `levels[grid.index(pos)]`.
    levels: Vec<f64>,
}

impl CompressionMatrix {
    /// Uniform matrix: every tile at the same level. `uniform(grid, 1.0)` is
    /// the uncompressed reference.
    pub fn uniform(grid: &TileGrid, level: f64) -> Self {
        assert!(level >= L_MIN);
        CompressionMatrix {
            grid: *grid,
            roi_center: TilePos::new(0, 0),
            levels: vec![level; grid.tile_count()],
        }
    }

    /// Crate-internal constructor from explicit row-major levels; the
    /// public surface only builds matrices through modes and modulations
    /// so `levels` stays consistent with `grid`.
    pub(crate) fn from_levels(grid: TileGrid, roi_center: TilePos, levels: Vec<f64>) -> Self {
        assert_eq!(levels.len(), grid.tile_count());
        CompressionMatrix { grid, roi_center, levels }
    }

    /// Compression level at a tile.
    pub fn level(&self, pos: TilePos) -> f64 {
        self.levels[self.grid.index(pos)]
    }

    /// All levels in row-major order.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Re-center the matrix on a new ROI. Under a distance-based mode this
    /// is exactly the cyclic shift the paper describes; implemented as a
    /// shift so it is mode-agnostic.
    pub fn recenter(&self, new_center: TilePos) -> CompressionMatrix {
        let grid = self.grid;
        let di = new_center.i as i16 - self.roi_center.i as i16;
        let dj = new_center.j as i16 - self.roi_center.j as i16;
        let mut levels = vec![0.0; grid.tile_count()];
        for pos in grid.iter() {
            // Source column: cyclic shift in x.
            let src_i = (pos.i as i16 - di).rem_euclid(grid.cols as i16) as u8;
            // Source row: shift with clamping (rows do not wrap); tiles
            // shifted in from beyond the pole take the edge row's level.
            let src_j = (pos.j as i16 - dj).clamp(0, grid.rows as i16 - 1) as u8;
            levels[grid.index(pos)] = self.levels[grid.index(TilePos::new(src_i, src_j))];
        }
        CompressionMatrix { grid, roi_center: new_center, levels }
    }

    /// Fraction of the raw spatial payload retained (mean of `1/l`).
    pub fn load_factor(&self) -> f64 {
        self.levels.iter().map(|&l| 1.0 / l).sum::<f64>() / self.levels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TileGrid {
        TileGrid::POI360
    }

    #[test]
    fn roi_center_has_lmin() {
        let g = grid();
        for mode in CompressionMode::poi360_modes() {
            let m = mode.matrix(&g, TilePos::new(4, 3));
            assert_eq!(m.level(TilePos::new(4, 3)), L_MIN);
        }
    }

    #[test]
    fn level_monotone_in_distance() {
        let g = grid();
        let mode = CompressionMode::geometric(1.4);
        let center = TilePos::new(6, 4);
        let m = mode.matrix(&g, center);
        for a in g.iter() {
            for b in g.iter() {
                let (da, db) = (g.distance(a, center), g.distance(b, center));
                if da < db {
                    assert!(m.level(a) < m.level(b), "{a:?} {b:?}");
                }
            }
        }
    }

    #[test]
    fn eq1_matches_definition() {
        let g = grid();
        let c = 1.3;
        let mode = CompressionMode::geometric(c);
        let center = TilePos::new(2, 6);
        let m = mode.matrix(&g, center);
        for pos in g.iter() {
            let d = g.distance(pos, center);
            let expect = c.powi(d as i32);
            assert!((m.level(pos) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn modes_ordered_by_aggressiveness() {
        let g = grid();
        let modes = CompressionMode::poi360_modes();
        assert_eq!(modes.len(), 8);
        let center = TilePos::new(6, 4);
        let loads: Vec<f64> = modes.iter().map(|f| f.load_factor(&g, center)).collect();
        // F1 (C=1.8) must retain the least payload; F8 (C=1.1) the most.
        for w in loads.windows(2) {
            assert!(w[0] < w[1], "loads must increase: {loads:?}");
        }
    }

    #[test]
    fn protected_region_is_flat_then_falls_off() {
        let g = grid();
        let mode = CompressionMode::protected_geometric(1.5, 1, 1);
        let center = TilePos::new(6, 4);
        let m = mode.matrix(&g, center);
        // The whole 3×3 region sits at L_MIN.
        for di in -1i16..=1 {
            for dj in -1i16..=1 {
                let pos = TilePos::new((6 + di) as u8, (4 + dj) as u8);
                assert_eq!(m.level(pos), L_MIN, "{pos:?}");
            }
        }
        // One tile beyond the region edge: exactly C.
        assert!((m.level(TilePos::new(8, 4)) - 1.5).abs() < 1e-12);
        assert!((m.level(TilePos::new(8, 6)) - 1.5f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    fn poi360_modes_protect_the_fov() {
        let g = grid();
        let center = TilePos::new(3, 3);
        for mode in CompressionMode::poi360_modes() {
            let m = mode.matrix(&g, center);
            assert_eq!(m.level(TilePos::new(4, 4)), L_MIN);
            assert_eq!(m.level(TilePos::new(2, 2)), L_MIN);
            assert!(m.level(TilePos::new(6, 3)) > L_MIN);
        }
    }

    #[test]
    fn two_level_splits_in_and_out() {
        let g = grid();
        let mode = CompressionMode::two_level(1, 1, 48.0);
        let center = TilePos::new(0, 4); // wraps in x
        let m = mode.matrix(&g, center);
        assert_eq!(m.level(TilePos::new(11, 4)), L_MIN);
        assert_eq!(m.level(TilePos::new(1, 5)), L_MIN);
        assert_eq!(m.level(TilePos::new(2, 4)), 48.0);
        let distinct: std::collections::BTreeSet<u64> =
            m.levels().iter().map(|l| l.to_bits()).collect();
        assert_eq!(distinct.len(), 2, "Conduit has exactly two levels");
    }

    #[test]
    fn recenter_equals_rebuild_for_distance_modes() {
        // For a purely distance-based mode, the cyclic shift must give the
        // same matrix as rebuilding from scratch (when no pole clamping is
        // involved, i.e. same row).
        let g = grid();
        let mode = CompressionMode::geometric(1.5);
        let m0 = mode.matrix(&g, TilePos::new(3, 4));
        let shifted = m0.recenter(TilePos::new(9, 4));
        let rebuilt = mode.matrix(&g, TilePos::new(9, 4));
        for pos in g.iter() {
            assert!(
                (shifted.level(pos) - rebuilt.level(pos)).abs() < 1e-12,
                "{pos:?}: {} vs {}",
                shifted.level(pos),
                rebuilt.level(pos)
            );
        }
    }

    #[test]
    fn load_factor_of_uniform_is_inverse_level() {
        let g = grid();
        let m = CompressionMatrix::uniform(&g, 4.0);
        assert!((m.load_factor() - 0.25).abs() < 1e-12);
        assert_eq!(CompressionMatrix::uniform(&g, 1.0).load_factor(), 1.0);
    }

    #[test]
    fn aggressive_mode_much_lighter_than_conservative() {
        let g = grid();
        let center = TilePos::new(6, 4);
        let aggressive = CompressionMode::geometric(1.8).load_factor(&g, center);
        let conservative = CompressionMode::geometric(1.1).load_factor(&g, center);
        assert!(aggressive < conservative / 3.0, "{aggressive} vs {conservative}");
    }

    #[test]
    #[should_panic(expected = "C must exceed 1")]
    fn rejects_non_expanding_c() {
        CompressionMode::geometric(1.0);
    }
}
