//! Region-of-interest coordinates.
//!
//! The viewer's ROI is derived from head orientation (yaw, pitch). The ROI
//! *center* is the tile the gaze direction falls into (paper §4.1:
//! `r = (i*, j*)`), and the ROI *region* is the set of tiles covered by the
//! HMD field of view around that center — we use the 3×3 tile neighbourhood,
//! which corresponds to a ~90°×67.5° FoV on the 12×8 grid, matching typical
//! mobile HMD optics.

use crate::frame::{TileGrid, TilePos};

/// A region of interest: continuous gaze angles plus the derived center tile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Roi {
    /// Gaze yaw in degrees, normalized to `[0, 360)`.
    pub yaw_deg: f64,
    /// Gaze pitch in degrees, clamped to `[-90, 90]`.
    pub pitch_deg: f64,
    /// The ROI center tile `r = (i*, j*)`.
    pub center: TilePos,
}

impl Roi {
    /// Build an ROI from gaze angles.
    pub fn from_angles(grid: &TileGrid, yaw_deg: f64, pitch_deg: f64) -> Self {
        let yaw = yaw_deg.rem_euclid(360.0);
        let pitch = pitch_deg.clamp(-90.0, 90.0);
        Roi { yaw_deg: yaw, pitch_deg: pitch, center: grid.tile_at(yaw, pitch) }
    }

    /// Build an ROI pointing at the center of the given tile.
    pub fn at_tile(grid: &TileGrid, center: TilePos) -> Self {
        let yaw = (center.i as f64 + 0.5) * grid.yaw_per_tile();
        let pitch = (center.j as f64 + 0.5) * grid.pitch_per_tile() - 90.0;
        Roi { yaw_deg: yaw, pitch_deg: pitch, center }
    }

    /// The straight-ahead ROI (yaw 180°, pitch 0°) — the middle of the
    /// canvas, a natural session start.
    pub fn front(grid: &TileGrid) -> Self {
        Roi::from_angles(grid, 180.0, 0.0)
    }

    /// Tiles covered by the HMD field of view: the `(2*half_w+1) ×
    /// (2*half_h+1)` neighbourhood of the center, cyclic in x and clamped
    /// in y. With the default `half_w = half_h = 1` this is the 3×3 region
    /// used for ROI quality measurement.
    pub fn fov_tiles(&self, grid: &TileGrid, half_w: u8, half_h: u8) -> Vec<TilePos> {
        let mut tiles = Vec::with_capacity((2 * half_w as usize + 1) * (2 * half_h as usize + 1));
        for dj in -(half_h as i16)..=half_h as i16 {
            let j = self.center.j as i16 + dj;
            if j < 0 || j >= grid.rows as i16 {
                continue; // rows clamp at the poles; out-of-range rows do not exist
            }
            for di in -(half_w as i16)..=half_w as i16 {
                let i = (self.center.i as i16 + di).rem_euclid(grid.cols as i16);
                tiles.push(TilePos::new(i as u8, j as u8));
            }
        }
        tiles
    }

    /// Angular yaw difference to another ROI, in `[-180, 180)`.
    pub fn yaw_delta(&self, other: &Roi) -> f64 {
        let mut d = self.yaw_deg - other.yaw_deg;
        while d >= 180.0 {
            d -= 360.0;
        }
        while d < -180.0 {
            d += 360.0;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TileGrid {
        TileGrid::POI360
    }

    #[test]
    fn from_angles_normalizes() {
        let r = Roi::from_angles(&grid(), 540.0, 120.0);
        assert_eq!(r.yaw_deg, 180.0);
        assert_eq!(r.pitch_deg, 90.0);
        assert_eq!(r.center, TilePos::new(6, 7));
    }

    #[test]
    fn at_tile_roundtrips_center() {
        let g = grid();
        for pos in g.iter() {
            let roi = Roi::at_tile(&g, pos);
            assert_eq!(roi.center, pos, "tile {pos:?}");
            assert_eq!(g.tile_at(roi.yaw_deg, roi.pitch_deg), pos);
        }
    }

    #[test]
    fn fov_is_3x3_in_the_middle() {
        let g = grid();
        let roi = Roi::at_tile(&g, TilePos::new(5, 4));
        let tiles = roi.fov_tiles(&g, 1, 1);
        assert_eq!(tiles.len(), 9);
        for t in &tiles {
            assert!(g.dx(t.i, 5) <= 1 && g.dy(t.j, 4) <= 1);
        }
    }

    #[test]
    fn fov_wraps_in_yaw() {
        let g = grid();
        let roi = Roi::at_tile(&g, TilePos::new(0, 4));
        let tiles = roi.fov_tiles(&g, 1, 1);
        assert_eq!(tiles.len(), 9);
        assert!(tiles.iter().any(|t| t.i == 11), "left neighbour wraps to column 11");
    }

    #[test]
    fn fov_clamps_at_poles() {
        let g = grid();
        let top = Roi::at_tile(&g, TilePos::new(5, 7));
        assert_eq!(top.fov_tiles(&g, 1, 1).len(), 6); // one row falls off the top
        let bottom = Roi::at_tile(&g, TilePos::new(5, 0));
        assert_eq!(bottom.fov_tiles(&g, 1, 1).len(), 6);
    }

    #[test]
    fn yaw_delta_is_shortest_arc() {
        let g = grid();
        let a = Roi::from_angles(&g, 10.0, 0.0);
        let b = Roi::from_angles(&g, 350.0, 0.0);
        assert_eq!(a.yaw_delta(&b), 20.0);
        assert_eq!(b.yaw_delta(&a), -20.0);
    }

    #[test]
    fn front_is_canvas_middle() {
        let g = grid();
        let r = Roi::front(&g);
        assert_eq!(r.center, TilePos::new(6, 4));
    }
}
