//! Frame-level video encoder model.
//!
//! Stands in for the paper's canvas-capture + VP8 pipeline (§5). Per frame
//! it:
//!
//! 1. takes the compression matrix chosen by the spatial-compression policy,
//! 2. computes the bits *required* to encode every tile at full quality at
//!    its assigned spatial level (complex tiles cost proportionally more),
//! 3. spends `min(required, target-rate budget)` bits, splitting them across
//!    tiles proportionally to their encoded pixel area × complexity, and
//! 4. emits an [`EncodedFrame`] carrying per-tile levels/bits plus the
//!    embedded metadata the prototype stitches into the canvas: the sender's
//!    ROI knowledge, the compression matrix, and the capture timestamp.
//!
//! The encoder tracks a running *rate debt* so that keyframe bursts and
//! output jitter average out to the target bitrate, like a real codec's
//! rate controller.

use crate::compression::CompressionMatrix;
use crate::content::ContentModel;
use crate::frame::FrameGeometry;
use crate::rd::RdModel;
use crate::roi::Roi;
use poi360_sim::rng::SimRng;
use poi360_sim::time::SimTime;
use poi360_sim::Recorder;

/// Encoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct EncoderConfig {
    /// Frame geometry (canvas + grid).
    pub geometry: FrameGeometry,
    /// Frame rate (the paper's sessions run at 36 FPS).
    pub fps: f64,
    /// Bits per encoded pixel that yields "full" quality at level 1.
    /// 0.04766 bpp reproduces the paper's 12.65 Mbps raw 4K stream.
    pub full_quality_bpp: f64,
    /// Keyframe period in frames; 0 disables periodic keyframes (WebRTC
    /// uses an open GOP and only sends keyframes on request).
    pub keyframe_interval: u32,
    /// Size multiplier of a keyframe relative to a delta frame.
    pub keyframe_cost: f64,
    /// Log-std of the encoder's output-size jitter around its target.
    pub rate_jitter_std: f64,
    /// Floor on frame payload (headers, embedded metadata blocks), bytes.
    pub min_frame_bytes: u32,
    /// Intra-refresh cost factor: when a tile's compression level drops
    /// (quality upgraded, e.g. the ROI moved onto it), its newly detailed
    /// pixels cannot be temporally predicted and cost extra bits. The
    /// factor scales the upgraded pixel area's full-quality cost.
    pub intra_upgrade_factor: f64,
    /// Scene-change threshold: if more than this fraction of the effective
    /// (encoded) pixel area was upgraded since the previous frame, the
    /// encoder emits a full keyframe — which is what a real codec's
    /// scene-change detector does when a two-level crop scheme relocates
    /// its full-quality region.
    pub scene_change_threshold: f64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            geometry: FrameGeometry::UHD_4K,
            fps: 36.0,
            full_quality_bpp: 0.04766,
            keyframe_interval: 0,
            keyframe_cost: 3.0,
            rate_jitter_std: 0.08,
            min_frame_bytes: 200,
            intra_upgrade_factor: 2.0,
            scene_change_threshold: 0.4,
        }
    }
}

impl EncoderConfig {
    /// The bitrate of the stream when nothing is spatially compressed —
    /// the paper's 12.65 Mbps reference for a 4K 360° feed.
    pub fn raw_bitrate_bps(&self) -> f64 {
        self.full_quality_bpp * self.geometry.total_pixels() as f64 * self.fps
    }

    /// Frame interval.
    pub fn frame_interval(&self) -> poi360_sim::SimDuration {
        poi360_sim::SimDuration::from_secs_f64(1.0 / self.fps)
    }
}

/// Per-tile encoding result.
#[derive(Clone, Copy, Debug)]
pub struct EncodedTile {
    /// Spatial compression level `l_ij` the tile was encoded at.
    pub level: f64,
    /// Bits spent on the tile.
    pub bits: f64,
    /// Content complexity weight at encode time.
    pub weight: f64,
}

impl EncodedTile {
    /// Bits per *encoded* pixel (after spatial downscale by `level`).
    pub fn bpp(&self, tile_pixels: u32) -> f64 {
        let encoded_px = tile_pixels as f64 / self.level;
        if encoded_px <= 0.0 {
            0.0
        } else {
            self.bits / encoded_px
        }
    }

    /// Display MSE of this tile under the given R-D model.
    pub fn display_mse(&self, rd: &RdModel, tile_pixels: u32) -> f64 {
        rd.tile_mse(self.weight, self.bpp(tile_pixels), self.level)
    }
}

/// One encoded 360° frame, including the metadata the prototype embeds in
/// the canvas (§5): sender ROI knowledge, compression matrix, timestamp.
#[derive(Clone, Debug)]
pub struct EncodedFrame {
    /// Monotonic frame number.
    pub frame_no: u64,
    /// Capture/encode instant (the embedded sending timestamp).
    pub capture_time: SimTime,
    /// Total payload size in bytes.
    pub bytes: u32,
    /// Whether this is a keyframe.
    pub keyframe: bool,
    /// The sender's ROI knowledge used for this frame.
    pub sender_roi: Roi,
    /// The compression matrix applied (embedded so the client can unfold).
    pub matrix: CompressionMatrix,
    /// Per-tile results, row-major.
    pub tiles: Vec<EncodedTile>,
}

impl EncodedFrame {
    /// Aggregate PSNR over an arbitrary set of tiles (all tiles render at
    /// the same display size, so pixel weights are uniform).
    pub fn region_psnr(
        &self,
        rd: &RdModel,
        geometry: &FrameGeometry,
        tiles: impl IntoIterator<Item = crate::frame::TilePos>,
    ) -> f64 {
        let px = geometry.tile_pixels();
        rd.region_psnr(tiles.into_iter().map(|pos| {
            let t = &self.tiles[geometry.grid.index(pos)];
            (px as f64, t.display_mse(rd, px))
        }))
    }
}

/// The frame-level encoder.
#[derive(Clone, Debug)]
pub struct Encoder {
    cfg: EncoderConfig,
    rng: SimRng,
    next_frame_no: u64,
    /// Accumulated bits spent above target; repaid by shrinking later frames.
    rate_debt_bits: f64,
    keyframe_requested: bool,
    /// Matrix of the previous frame, for intra-upgrade costing.
    last_matrix: Option<CompressionMatrix>,
    recorder: Recorder,
}

impl Encoder {
    /// Create an encoder.
    pub fn new(cfg: EncoderConfig, seed: u64) -> Self {
        Encoder {
            cfg,
            rng: SimRng::stream(seed, "video.encoder"),
            next_frame_no: 0,
            rate_debt_bits: 0.0,
            keyframe_requested: true, // first frame is always a keyframe
            last_matrix: None,
            recorder: Recorder::null(),
        }
    }

    /// Attach the session's probe recorder.
    pub fn set_recorder(&mut self, rec: &Recorder) {
        self.recorder = rec.clone();
    }

    /// Configuration in use.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Ask for the next frame to be a keyframe (WebRTC PLI handling).
    pub fn request_keyframe(&mut self) {
        self.keyframe_requested = true;
    }

    /// Bits required to hit full quality for every tile under `matrix`.
    pub fn required_bits_per_frame(
        &self,
        matrix: &CompressionMatrix,
        content: &ContentModel,
    ) -> f64 {
        let geo = &self.cfg.geometry;
        let tile_px = geo.tile_pixels() as f64;
        geo.grid
            .iter()
            .map(|pos| {
                let level = matrix.level(pos);
                let encoded_px = tile_px / level;
                encoded_px * content.weight(pos) * self.cfg.full_quality_bpp
            })
            .sum()
    }

    /// The source bitrate (bps) needed to sustain full quality under
    /// `matrix` at the configured frame rate.
    pub fn required_bitrate(&self, matrix: &CompressionMatrix, content: &ContentModel) -> f64 {
        self.required_bits_per_frame(matrix, content) * self.cfg.fps
    }

    /// Encode one frame against a target source bitrate (bps).
    pub fn encode(
        &mut self,
        now: SimTime,
        sender_roi: Roi,
        matrix: &CompressionMatrix,
        content: &ContentModel,
        target_bitrate_bps: f64,
    ) -> EncodedFrame {
        let frame_no = self.next_frame_no;
        self.next_frame_no += 1;

        // Scene-change detection: a large quality redistribution forces a
        // keyframe.
        let geo_scene = &self.cfg.geometry;
        let tile_px_scene = geo_scene.tile_pixels() as f64;
        let mut upgraded_px = 0.0;
        let mut total_effective_px = 0.0;
        if let Some(prev) = &self.last_matrix {
            for pos in geo_scene.grid.iter() {
                let new_px = tile_px_scene / matrix.level(pos);
                let old_px = tile_px_scene / prev.level(pos);
                upgraded_px += (new_px - old_px).max(0.0) * content.weight(pos);
                total_effective_px += new_px;
            }
        }
        let scene_change = total_effective_px > 0.0
            && upgraded_px / total_effective_px > self.cfg.scene_change_threshold;

        let keyframe = self.keyframe_requested
            || scene_change
            || (self.cfg.keyframe_interval > 0
                && frame_no.is_multiple_of(self.cfg.keyframe_interval as u64));
        self.keyframe_requested = false;

        // Budget: target bits/frame, minus outstanding debt, times keyframe
        // factor when applicable. Never below a minimal floor.
        let per_frame = (target_bitrate_bps / self.cfg.fps).max(0.0);
        let mut budget =
            (per_frame - self.rate_debt_bits.max(0.0)).max(self.cfg.min_frame_bytes as f64 * 8.0);
        if keyframe {
            budget *= self.cfg.keyframe_cost;
        }

        let required = self.required_bits_per_frame(matrix, content);
        let mut spend_target =
            budget.min(if keyframe { required * self.cfg.keyframe_cost } else { required });

        // Intra-refresh burst: pixels whose quality was upgraded since the
        // previous frame (level dropped) cannot be predicted and must be
        // intra-coded on top of the regular budget. This is what makes
        // abrupt quality redistributions (Conduit's floor→full jumps on ROI
        // change) expensive on a tight uplink. Keyframes already pay the
        // full intra cost. The intra blocks are coded at the *current*
        // operating quality, so the burst scales with the rate ratio: a
        // starved encoder refreshes cheaply coarse tiles, not pristine ones.
        if !keyframe {
            let quality_ratio =
                if required > 0.0 { (budget / required).clamp(0.05, 1.0) } else { 1.0 };
            spend_target += upgraded_px
                * self.cfg.full_quality_bpp
                * self.cfg.intra_upgrade_factor
                * quality_ratio;
        }
        self.last_matrix = Some(matrix.clone());

        // Encoder output jitter: real codecs overshoot/undershoot per frame.
        let jitter = (self.rng.gaussian() * self.cfg.rate_jitter_std).exp();
        let spent = (spend_target * jitter).max(self.cfg.min_frame_bytes as f64 * 8.0);

        // Debt bookkeeping against the *target rate*, so the long-run output
        // averages to min(target, required).
        let steady_target = per_frame.min(required);
        self.rate_debt_bits = (self.rate_debt_bits + spent - steady_target)
            .clamp(-4.0 * per_frame.max(1.0), 4.0 * per_frame.max(1.0));

        // Split bits across tiles ∝ encoded pixels × complexity.
        let geo = &self.cfg.geometry;
        let tile_px = geo.tile_pixels() as f64;
        let shares: Vec<f64> = geo
            .grid
            .iter()
            .map(|pos| (tile_px / matrix.level(pos)) * content.weight(pos))
            .collect();
        let share_sum: f64 = shares.iter().sum();
        let tiles: Vec<EncodedTile> = geo
            .grid
            .iter()
            .zip(shares.iter())
            .map(|(pos, &share)| EncodedTile {
                level: matrix.level(pos),
                bits: spent * share / share_sum,
                weight: content.weight(pos),
            })
            .collect();

        let bytes = (spent / 8.0).ceil() as u32;
        if keyframe {
            self.recorder.count("video.keyframe", now, 1);
        }
        self.recorder.event("video.frame_bytes", now, bytes as f64);

        EncodedFrame {
            frame_no,
            capture_time: now,
            bytes,
            keyframe,
            sender_roi,
            matrix: matrix.clone(),
            tiles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression::CompressionMode;
    use crate::frame::{TileGrid, TilePos};

    fn setup() -> (Encoder, ContentModel, Roi) {
        let cfg = EncoderConfig::default();
        let enc = Encoder::new(cfg, 7);
        let content = ContentModel::new(TileGrid::POI360, 7);
        let roi = Roi::at_tile(&TileGrid::POI360, TilePos::new(6, 4));
        (enc, content, roi)
    }

    #[test]
    fn raw_bitrate_matches_paper() {
        let cfg = EncoderConfig::default();
        let raw = cfg.raw_bitrate_bps();
        assert!((raw - 12.65e6).abs() < 0.05e6, "raw bitrate {raw}");
    }

    #[test]
    fn required_bitrate_uncompressed_equals_raw() {
        let (enc, content, _) = setup();
        let m = CompressionMatrix::uniform(&TileGrid::POI360, 1.0);
        let req = enc.required_bitrate(&m, &content);
        let raw = enc.config().raw_bitrate_bps();
        assert!((req / raw - 1.0).abs() < 0.05, "req {req} raw {raw}");
    }

    #[test]
    fn adaptive_mode_cuts_required_bitrate_like_paper() {
        // Paper §6.1.1: 12.65 Mbps raw shrinks to ~3 Mbps received (−76%).
        let (enc, content, roi) = setup();
        let mid = CompressionMode::geometric(1.4).matrix(&TileGrid::POI360, roi.center);
        let req = enc.required_bitrate(&mid, &content);
        let raw = enc.config().raw_bitrate_bps();
        let reduction = 1.0 - req / raw;
        assert!((0.60..0.92).contains(&reduction), "reduction {reduction}");
    }

    #[test]
    fn long_run_output_tracks_target() {
        let (mut enc, mut content, roi) = setup();
        let matrix = CompressionMode::geometric(1.3).matrix(&TileGrid::POI360, roi.center);
        let target = 2.0e6;
        let mut now = SimTime::ZERO;
        let mut total_bits = 0.0;
        let n = 720; // 20 s
        for _ in 0..n {
            let f = enc.encode(now, roi, &matrix, &content, target);
            total_bits += f.bytes as f64 * 8.0;
            content.advance_frame();
            now += enc.config().frame_interval();
        }
        let rate = total_bits / (n as f64 / enc.config().fps);
        assert!((rate / target - 1.0).abs() < 0.1, "rate {rate} target {target}");
    }

    #[test]
    fn output_capped_by_required_when_target_is_huge() {
        let (mut enc, content, roi) = setup();
        let matrix = CompressionMode::geometric(1.8).matrix(&TileGrid::POI360, roi.center);
        let req = enc.required_bitrate(&matrix, &content);
        let mut total_bits = 0.0;
        let n = 360;
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            let f = enc.encode(now, roi, &matrix, &content, 50.0e6);
            total_bits += f.bytes as f64 * 8.0;
            now += enc.config().frame_interval();
        }
        let rate = total_bits / (n as f64 / enc.config().fps);
        assert!(rate < req * 1.25, "rate {rate} should stay near required {req}");
    }

    #[test]
    fn first_frame_is_keyframe_and_larger() {
        let (mut enc, content, roi) = setup();
        let matrix = CompressionMode::geometric(1.3).matrix(&TileGrid::POI360, roi.center);
        let f0 = enc.encode(SimTime::ZERO, roi, &matrix, &content, 3.0e6);
        assert!(f0.keyframe);
        let f1 = enc.encode(SimTime::from_millis(28), roi, &matrix, &content, 3.0e6);
        assert!(!f1.keyframe);
        assert!(f0.bytes > f1.bytes, "keyframe {} delta {}", f0.bytes, f1.bytes);
    }

    #[test]
    fn keyframe_request_honored_once() {
        let (mut enc, content, roi) = setup();
        let matrix = CompressionMode::geometric(1.3).matrix(&TileGrid::POI360, roi.center);
        enc.encode(SimTime::ZERO, roi, &matrix, &content, 3.0e6);
        enc.request_keyframe();
        let f = enc.encode(SimTime::from_millis(28), roi, &matrix, &content, 3.0e6);
        assert!(f.keyframe);
        let f2 = enc.encode(SimTime::from_millis(56), roi, &matrix, &content, 3.0e6);
        assert!(!f2.keyframe);
    }

    #[test]
    fn roi_quality_beats_periphery() {
        let (mut enc, content, roi) = setup();
        let rd = RdModel::default();
        let geo = enc.config().geometry;
        let matrix = CompressionMode::geometric(1.4).matrix(&TileGrid::POI360, roi.center);
        let f = enc.encode(SimTime::ZERO, roi, &matrix, &content, 3.0e6);
        let roi_psnr = f.region_psnr(&rd, &geo, roi.fov_tiles(&geo.grid, 1, 1));
        let far = TilePos::new((roi.center.i + 6) % 12, 7 - roi.center.j);
        let far_psnr = f.region_psnr(&rd, &geo, [far]);
        assert!(roi_psnr > far_psnr + 6.0, "roi {roi_psnr} dB vs far {far_psnr} dB");
    }

    #[test]
    fn roi_jump_causes_intra_burst() {
        let (mut enc, content, _) = setup();
        let grid = TileGrid::POI360;
        let mode = CompressionMode::two_level(1, 1, 48.0);
        let m_a = mode.matrix(&grid, TilePos::new(2, 4));
        let m_b = mode.matrix(&grid, TilePos::new(8, 4));
        let roi_a = Roi::at_tile(&grid, TilePos::new(2, 4));
        let roi_b = Roi::at_tile(&grid, TilePos::new(8, 4));
        let target = 2.0e6;
        let mut now = SimTime::ZERO;
        // Settle on matrix A.
        let mut steady = 0u32;
        for _ in 0..20 {
            steady = enc.encode(now, roi_a, &m_a, &content, target).bytes;
            now += enc.config().frame_interval();
        }
        // ROI jumps: 9 tiles upgraded floor -> full.
        let burst = enc.encode(now, roi_b, &m_b, &content, target).bytes;
        assert!(burst as f64 > steady as f64 * 2.0, "upgrade burst {burst} vs steady {steady}");
    }

    #[test]
    fn smooth_mode_bursts_less_than_crop_mode() {
        let grid = TileGrid::POI360;
        let content = ContentModel::new(grid, 7);
        let measure = |mode: CompressionMode| -> f64 {
            let mut enc =
                Encoder::new(EncoderConfig { rate_jitter_std: 0.0, ..Default::default() }, 7);
            let m_a = mode.matrix(&grid, TilePos::new(2, 4));
            let m_b = mode.matrix(&grid, TilePos::new(5, 4));
            let roi_a = Roi::at_tile(&grid, TilePos::new(2, 4));
            let roi_b = Roi::at_tile(&grid, TilePos::new(5, 4));
            let mut now = SimTime::ZERO;
            let mut steady = 0u32;
            for _ in 0..20 {
                steady = enc.encode(now, roi_a, &m_a, &content, 2.0e6).bytes;
                now += enc.config().frame_interval();
            }
            enc.encode(now, roi_b, &m_b, &content, 2.0e6).bytes as f64 / steady as f64
        };
        let crop_ratio = measure(CompressionMode::two_level(1, 1, 48.0));
        let smooth_ratio = measure(CompressionMode::geometric(1.2));
        assert!(
            crop_ratio > smooth_ratio,
            "crop burst {crop_ratio} vs smooth burst {smooth_ratio}"
        );
    }

    #[test]
    fn frame_numbers_are_monotonic() {
        let (mut enc, content, roi) = setup();
        let matrix = CompressionMode::geometric(1.3).matrix(&TileGrid::POI360, roi.center);
        for expect in 0..10 {
            let f = enc.encode(SimTime::from_millis(expect * 28), roi, &matrix, &content, 3e6);
            assert_eq!(f.frame_no, expect);
        }
    }

    #[test]
    fn tiles_cover_grid_and_bits_sum_to_frame() {
        let (mut enc, content, roi) = setup();
        let matrix = CompressionMode::geometric(1.3).matrix(&TileGrid::POI360, roi.center);
        let f = enc.encode(SimTime::ZERO, roi, &matrix, &content, 3e6);
        assert_eq!(f.tiles.len(), 96);
        let bits: f64 = f.tiles.iter().map(|t| t.bits).sum();
        assert!((bits / 8.0 - f.bytes as f64).abs() < 1.5, "bits {bits} bytes {}", f.bytes);
    }
}
