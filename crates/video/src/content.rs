//! Synthetic 360° content model.
//!
//! Substitutes for the paper's real camera feed (and the v4l2loopback
//! virtual webcam used to replay it, §6). Each tile has a *texture
//! complexity* weight `w` around 1.0: complex tiles (foliage, crowds) cost
//! more bits for the same quality; flat tiles (sky, road) cost fewer. The
//! field has
//!
//! * a static spatial component — equirectangular content concentrates
//!   detail near the horizon rows and varies smoothly in yaw, and
//! * a temporal component — scene motion makes complexity drift slowly,
//!   modeled per-tile as mean-reverting noise.
//!
//! Determinism: the whole field is a pure function of `(seed, frame_no)`, so
//! repeated runs replay the same "video", mirroring how the paper replays
//! the same 360° clip per user across repetitions.

use crate::frame::{TileGrid, TilePos};
use poi360_sim::rng::SimRng;

/// Per-tile texture-complexity field.
#[derive(Clone, Debug)]
pub struct ContentModel {
    grid: TileGrid,
    /// Static spatial weights, mean ≈ 1.
    base: Vec<f64>,
    /// Current temporal modulation, mean-reverting around 1.
    drift: Vec<f64>,
    rng: SimRng,
    /// Mean-reversion factor per frame.
    revert: f64,
    /// Per-frame innovation std.
    innovation: f64,
}

impl ContentModel {
    /// Create a content field for `grid` seeded from the experiment seed.
    pub fn new(grid: TileGrid, seed: u64) -> Self {
        let mut rng = SimRng::stream(seed, "video.content");
        let mut base = Vec::with_capacity(grid.tile_count());
        for pos in grid.iter() {
            // Horizon emphasis: rows near the middle carry more detail.
            let row_frac = (pos.j as f64 + 0.5) / grid.rows as f64; // 0..1 bottom..top
            let horizon = 1.0 - ((row_frac - 0.5).abs() * 2.0).powi(2) * 0.55;
            // Smooth yaw variation: a couple of low-frequency harmonics.
            let yaw = (pos.i as f64 + 0.5) / grid.cols as f64 * std::f64::consts::TAU;
            let spatial = 1.0 + 0.25 * yaw.sin() + 0.15 * (2.0 * yaw + 1.0).cos();
            // Small fixed per-tile texture variation.
            let jitter = 1.0 + 0.1 * rng.gaussian();
            base.push((horizon * spatial * jitter).max(0.25));
        }
        // Normalize the static field to mean 1 so bitrate calibration holds.
        let mean = base.iter().sum::<f64>() / base.len() as f64;
        for b in &mut base {
            *b /= mean;
        }
        ContentModel {
            grid,
            drift: vec![1.0; grid.tile_count()],
            base,
            rng,
            revert: 0.02,
            innovation: 0.015,
        }
    }

    /// The grid this field is defined over.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Advance the temporal component by one frame.
    pub fn advance_frame(&mut self) {
        for d in &mut self.drift {
            let noise = self.rng.gaussian() * self.innovation;
            *d += self.revert * (1.0 - *d) + noise;
            *d = d.clamp(0.5, 2.0);
        }
    }

    /// Complexity weight of a tile (≈ mean 1 across the frame).
    pub fn weight(&self, pos: TilePos) -> f64 {
        let idx = self.grid.index(pos);
        self.base[idx] * self.drift[idx]
    }

    /// All weights in row-major order.
    pub fn weights(&self) -> Vec<f64> {
        self.grid.iter().map(|p| self.weight(p)).collect()
    }

    /// Mean weight across the frame (≈ 1).
    pub fn mean_weight(&self) -> f64 {
        self.weights().iter().sum::<f64>() / self.grid.tile_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_positive_and_bounded() {
        let mut c = ContentModel::new(TileGrid::POI360, 1);
        for _ in 0..500 {
            c.advance_frame();
        }
        for pos in TileGrid::POI360.iter() {
            let w = c.weight(pos);
            assert!(w > 0.1 && w < 4.0, "weight {w} at {pos:?}");
        }
    }

    #[test]
    fn mean_weight_near_one() {
        let c = ContentModel::new(TileGrid::POI360, 2);
        assert!((c.mean_weight() - 1.0).abs() < 0.05, "{}", c.mean_weight());
    }

    #[test]
    fn mean_stays_near_one_over_time() {
        let mut c = ContentModel::new(TileGrid::POI360, 3);
        for _ in 0..2_000 {
            c.advance_frame();
        }
        assert!((c.mean_weight() - 1.0).abs() < 0.15, "{}", c.mean_weight());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ContentModel::new(TileGrid::POI360, 42);
        let mut b = ContentModel::new(TileGrid::POI360, 42);
        for _ in 0..100 {
            a.advance_frame();
            b.advance_frame();
        }
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ContentModel::new(TileGrid::POI360, 1);
        let b = ContentModel::new(TileGrid::POI360, 2);
        assert_ne!(a.weights(), b.weights());
    }

    #[test]
    fn horizon_rows_richer_than_poles() {
        let c = ContentModel::new(TileGrid::POI360, 7);
        let g = TileGrid::POI360;
        let row_mean = |j: u8| -> f64 {
            (0..g.cols).map(|i| c.weight(TilePos::new(i, j))).sum::<f64>() / g.cols as f64
        };
        let horizon = (row_mean(3) + row_mean(4)) / 2.0;
        let poles = (row_mean(0) + row_mean(7)) / 2.0;
        assert!(horizon > poles, "horizon {horizon} poles {poles}");
    }

    #[test]
    fn drift_actually_moves() {
        let mut c = ContentModel::new(TileGrid::POI360, 9);
        let before = c.weights();
        for _ in 0..50 {
            c.advance_frame();
        }
        let after = c.weights();
        assert_ne!(before, after);
    }
}
