//! Frame geometry: the equirectangular canvas and its tile grid.
//!
//! The paper's prototype divides every raw 360° frame into 12×8 tiles (§5).
//! With a 4K equirectangular canvas (3840×1920) each tile is 320×240 pixels.
//! Horizontally a tile spans 30° of yaw and the axis is cyclic (yaw wraps);
//! vertically a tile spans 22.5° of pitch and the axis is clamped at the
//! poles.

/// Position of a tile in the grid: `i` indexes the x-axis (yaw), `j` the
/// y-axis (pitch) — same convention as paper §4.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct TilePos {
    /// Column, `0 <= i < cols`; cyclic (yaw wraps around).
    pub i: u8,
    /// Row, `0 <= j < rows`; clamped (pitch has poles).
    pub j: u8,
}

impl TilePos {
    /// Construct a tile position.
    pub const fn new(i: u8, j: u8) -> Self {
        TilePos { i, j }
    }
}

/// The tile grid over an equirectangular frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGrid {
    /// Number of tile columns (12 in the paper's prototype).
    pub cols: u8,
    /// Number of tile rows (8 in the paper's prototype).
    pub rows: u8,
}

impl Default for TileGrid {
    fn default() -> Self {
        TileGrid { cols: 12, rows: 8 }
    }
}

impl TileGrid {
    /// The paper's 12×8 grid.
    pub const POI360: TileGrid = TileGrid { cols: 12, rows: 8 };

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Flat index of a tile (row-major).
    pub fn index(&self, pos: TilePos) -> usize {
        debug_assert!(pos.i < self.cols && pos.j < self.rows);
        pos.j as usize * self.cols as usize + pos.i as usize
    }

    /// Tile at a flat index.
    pub fn pos(&self, index: usize) -> TilePos {
        debug_assert!(index < self.tile_count());
        TilePos::new((index % self.cols as usize) as u8, (index / self.cols as usize) as u8)
    }

    /// Iterate over all tile positions in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = TilePos> + '_ {
        let cols = self.cols;
        let rows = self.rows;
        (0..rows).flat_map(move |j| (0..cols).map(move |i| TilePos::new(i, j)))
    }

    /// Cyclic column distance: the yaw axis wraps, so the distance between
    /// columns 0 and 11 on the 12-wide grid is 1, not 11.
    pub fn dx(&self, a: u8, b: u8) -> u8 {
        let cols = self.cols as i16;
        let raw = (a as i16 - b as i16).rem_euclid(cols);
        raw.min(cols - raw) as u8
    }

    /// Row distance: pitch does not wrap.
    pub fn dy(&self, a: u8, b: u8) -> u8 {
        (a as i16 - b as i16).unsigned_abs() as u8
    }

    /// Taxicab tile distance with cyclic x, used by paper Eq. 1 as
    /// `(i - i*) + (j - j*)`.
    pub fn distance(&self, a: TilePos, b: TilePos) -> u8 {
        self.dx(a.i, b.i) + self.dy(a.j, b.j)
    }

    /// Degrees of yaw spanned by one tile column.
    pub fn yaw_per_tile(&self) -> f64 {
        360.0 / self.cols as f64
    }

    /// Degrees of pitch spanned by one tile row.
    pub fn pitch_per_tile(&self) -> f64 {
        180.0 / self.rows as f64
    }

    /// Tile containing the given yaw (degrees, any value; wrapped) and pitch
    /// (degrees in `[-90, 90]`; clamped).
    pub fn tile_at(&self, yaw_deg: f64, pitch_deg: f64) -> TilePos {
        let yaw = yaw_deg.rem_euclid(360.0);
        let pitch = pitch_deg.clamp(-90.0, 90.0);
        let i = ((yaw / self.yaw_per_tile()) as i64).clamp(0, self.cols as i64 - 1) as u8;
        // Pitch -90 maps to row 0 (bottom), +90 to the top row.
        let j =
            (((pitch + 90.0) / self.pitch_per_tile()) as i64).clamp(0, self.rows as i64 - 1) as u8;
        TilePos::new(i, j)
    }
}

/// Full-frame geometry: canvas size plus the tile grid.
#[derive(Clone, Copy, Debug)]
pub struct FrameGeometry {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// The tile grid.
    pub grid: TileGrid,
}

impl Default for FrameGeometry {
    fn default() -> Self {
        FrameGeometry::UHD_4K
    }
}

impl FrameGeometry {
    /// The paper's configuration: 4K equirectangular, 12×8 tiles.
    pub const UHD_4K: FrameGeometry =
        FrameGeometry { width: 3840, height: 1920, grid: TileGrid::POI360 };

    /// Pixels per tile (the grid is assumed to divide the canvas exactly;
    /// asserted because a ragged grid would skew every per-tile statistic).
    pub fn tile_pixels(&self) -> u32 {
        assert_eq!(self.width % self.grid.cols as u32, 0, "grid must divide width");
        assert_eq!(self.height % self.grid.rows as u32, 0, "grid must divide height");
        (self.width / self.grid.cols as u32) * (self.height / self.grid.rows as u32)
    }

    /// Total pixels in the canvas.
    pub fn total_pixels(&self) -> u32 {
        self.width * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_matches_paper() {
        let g = TileGrid::default();
        assert_eq!((g.cols, g.rows), (12, 8));
        assert_eq!(g.tile_count(), 96);
    }

    #[test]
    fn index_pos_roundtrip() {
        let g = TileGrid::POI360;
        for idx in 0..g.tile_count() {
            assert_eq!(g.index(g.pos(idx)), idx);
        }
    }

    #[test]
    fn cyclic_dx_wraps() {
        let g = TileGrid::POI360;
        assert_eq!(g.dx(0, 11), 1);
        assert_eq!(g.dx(11, 0), 1);
        assert_eq!(g.dx(0, 6), 6);
        assert_eq!(g.dx(2, 9), 5);
        assert_eq!(g.dx(5, 5), 0);
    }

    #[test]
    fn dy_does_not_wrap() {
        let g = TileGrid::POI360;
        assert_eq!(g.dy(0, 7), 7);
        assert_eq!(g.dy(7, 0), 7);
        assert_eq!(g.dy(3, 3), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        let g = TileGrid::POI360;
        for a in g.iter() {
            for b in g.iter() {
                assert_eq!(g.distance(a, b), g.distance(b, a));
            }
        }
    }

    #[test]
    fn max_distance_bounded() {
        let g = TileGrid::POI360;
        let max = g.iter().flat_map(|a| g.iter().map(move |b| g.distance(a, b))).max().unwrap();
        // 6 cyclic columns + 7 rows.
        assert_eq!(max, 13);
    }

    #[test]
    fn tile_at_maps_angles() {
        let g = TileGrid::POI360;
        assert_eq!(g.tile_at(0.0, -90.0), TilePos::new(0, 0));
        assert_eq!(g.tile_at(359.9, 89.9), TilePos::new(11, 7));
        assert_eq!(g.tile_at(360.0, 0.0), TilePos::new(0, 4));
        assert_eq!(g.tile_at(-15.0, 0.0).i, 11); // negative yaw wraps
        assert_eq!(g.tile_at(45.0, 200.0).j, 7); // pitch clamps
    }

    #[test]
    fn geometry_tile_pixels() {
        let geo = FrameGeometry::UHD_4K;
        assert_eq!(geo.tile_pixels(), 320 * 240);
        assert_eq!(geo.total_pixels(), 3840 * 1920);
        assert_eq!(geo.tile_pixels() * geo.grid.tile_count() as u32, geo.total_pixels());
    }

    #[test]
    fn iter_visits_every_tile_once() {
        let g = TileGrid::POI360;
        let tiles: Vec<_> = g.iter().collect();
        assert_eq!(tiles.len(), 96);
        let mut seen = std::collections::HashSet::new();
        for t in tiles {
            assert!(seen.insert((t.i, t.j)));
        }
    }
}
