//! Rate–distortion model.
//!
//! Each displayed tile suffers two distortion sources, modeled additively in
//! the MSE domain (distortions from independent stages approximately add):
//!
//! 1. **Quantization distortion** from the temporal encoder, the classical
//!    power law `MSE_q = k_q · w · bpp^(-beta)` where `bpp` is the encoded
//!    bits per *encoded* pixel and `w` the tile's content complexity.
//! 2. **Spatial downscale distortion** from POI360's tile scaling
//!    (compression level `l` shrinks a tile's pixel area by `l`), modeled as
//!    `MSE_s = k_s · w · (l - 1)^gamma`, zero at `l = 1`.
//!
//! `PSNR = 10·log10(255² / MSE)`.
//!
//! ### Calibration
//! Constants are fitted to two anchors from the paper:
//! * the raw (uncompressed-matrix) 4K stream encodes at 12.65 Mbps (§6.1.1),
//!   i.e. ≈ 0.048 bpp at 36 FPS, and should sit in the "excellent" band
//!   (PSNR ≈ 40 dB, Table 1), and
//! * deep non-ROI levels (l ≈ 16–32) should land in the "poor"/"bad" bands
//!   (PSNR ≈ 18–21 dB), which is what makes an ROI mismatch visible.

/// Peak signal value for 8-bit video.
const PEAK: f64 = 255.0;

/// Rate–distortion model constants.
#[derive(Clone, Copy, Debug)]
pub struct RdModel {
    /// Quantization MSE coefficient `k_q`.
    pub k_q: f64,
    /// Quantization rate exponent `beta` (>0).
    pub beta: f64,
    /// Downscale MSE coefficient `k_s`.
    pub k_s: f64,
    /// Downscale level exponent `gamma` (>0).
    pub gamma: f64,
}

impl Default for RdModel {
    fn default() -> Self {
        // k_q solves 10*log10(255^2/mse)=39.5dB at bpp=0.048, w=1:
        //   mse = 7.30, k_q = mse * bpp^beta. Full quality thus sits just
        // above the Good/Excellent MOS boundary (37 dB), like the paper's
        // double-compressed (canvas + VP8) prototype pipeline.
        RdModel { k_q: 0.19, beta: 1.2, k_s: 14.0, gamma: 1.15 }
    }
}

impl RdModel {
    /// Quantization MSE for a tile with complexity `w` encoded at `bpp`
    /// bits per encoded pixel.
    pub fn quantization_mse(&self, w: f64, bpp: f64) -> f64 {
        debug_assert!(w > 0.0);
        if bpp <= 0.0 {
            // Zero bits: nothing decodable; saturate at a gray-frame error.
            return PEAK * PEAK / 10.0;
        }
        (self.k_q * w * bpp.powf(-self.beta)).min(PEAK * PEAK / 10.0)
    }

    /// Spatial downscale MSE for a tile with complexity `w` encoded at
    /// compression level `l >= 1` and upscaled back for display.
    pub fn downscale_mse(&self, w: f64, level: f64) -> f64 {
        debug_assert!(level >= 1.0 && w > 0.0);
        self.k_s * w * (level - 1.0).powf(self.gamma)
    }

    /// Total display MSE of a tile.
    pub fn tile_mse(&self, w: f64, bpp: f64, level: f64) -> f64 {
        self.quantization_mse(w, bpp) + self.downscale_mse(w, level)
    }

    /// PSNR (dB) from an MSE.
    pub fn psnr_from_mse(&self, mse: f64) -> f64 {
        debug_assert!(mse >= 0.0);
        // Cap at 55 dB: visually lossless; avoids infinities at mse -> 0.
        (10.0 * (PEAK * PEAK / mse.max(1e-3)).log10()).min(55.0)
    }

    /// PSNR of a single tile.
    pub fn tile_psnr(&self, w: f64, bpp: f64, level: f64) -> f64 {
        self.psnr_from_mse(self.tile_mse(w, bpp, level))
    }

    /// Aggregate PSNR over a region: MSEs combine pixel-weighted, then one
    /// log. `tiles` yields `(pixel_weight, mse)` pairs.
    pub fn region_psnr(&self, tiles: impl IntoIterator<Item = (f64, f64)>) -> f64 {
        let mut wsum = 0.0;
        let mut msum = 0.0;
        for (pixels, mse) in tiles {
            wsum += pixels;
            msum += pixels * mse;
        }
        if wsum <= 0.0 {
            return 0.0;
        }
        self.psnr_from_mse(msum / wsum)
    }

    /// The bits-per-pixel at which an untouched (`l = 1`) average tile
    /// reaches the given PSNR — used to size the "full quality" bitrate.
    pub fn bpp_for_psnr(&self, w: f64, psnr_db: f64) -> f64 {
        let mse = PEAK * PEAK / 10f64.powf(psnr_db / 10.0);
        (self.k_q * w / mse).powf(1.0 / self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rd() -> RdModel {
        RdModel::default()
    }

    #[test]
    fn calibration_anchor_raw_stream() {
        // 12.65 Mbps, 36 FPS, 4K: bpp = 12.65e6/36/(3840*1920) = 0.04766.
        let psnr = rd().tile_psnr(1.0, 0.04766, 1.0);
        assert!((38.0..43.0).contains(&psnr), "raw-stream PSNR {psnr}");
    }

    #[test]
    fn deep_levels_are_poor_or_bad() {
        let bpp = 0.048;
        let p16 = rd().tile_psnr(1.0, bpp, 16.0);
        let p32 = rd().tile_psnr(1.0, bpp, 32.0);
        assert!(p16 < 25.0, "l=16 PSNR {p16}");
        assert!(p32 < 21.0, "l=32 PSNR {p32}");
        assert!(p32 < p16);
    }

    #[test]
    fn psnr_monotone_in_bits() {
        let r = rd();
        let mut last = 0.0;
        for bpp in [0.005, 0.01, 0.02, 0.05, 0.1, 0.3] {
            let p = r.tile_psnr(1.0, bpp, 1.0);
            assert!(p > last, "bpp {bpp}: {p} <= {last}");
            last = p;
        }
    }

    #[test]
    fn psnr_monotone_decreasing_in_level() {
        let r = rd();
        let mut last = f64::INFINITY;
        for l in [1.0, 1.5, 2.0, 4.0, 8.0, 16.0] {
            let p = r.tile_psnr(1.0, 0.05, l);
            assert!(p < last, "l {l}: {p} >= {last}");
            last = p;
        }
    }

    #[test]
    fn complex_content_costs_quality() {
        let r = rd();
        assert!(r.tile_psnr(2.0, 0.05, 1.0) < r.tile_psnr(0.5, 0.05, 1.0));
    }

    #[test]
    fn zero_bits_saturates_not_panics() {
        let r = rd();
        let p = r.tile_psnr(1.0, 0.0, 1.0);
        assert!(p < 15.0, "zero-bit PSNR {p}");
    }

    #[test]
    fn region_psnr_between_extremes() {
        let r = rd();
        let good = r.tile_mse(1.0, 0.05, 1.0);
        let bad = r.tile_mse(1.0, 0.05, 32.0);
        let combined = r.region_psnr([(1.0, good), (1.0, bad)]);
        assert!(combined > r.psnr_from_mse(bad));
        assert!(combined < r.psnr_from_mse(good));
    }

    #[test]
    fn region_psnr_pixel_weighting_matters() {
        let r = rd();
        let good = r.tile_mse(1.0, 0.05, 1.0);
        let bad = r.tile_mse(1.0, 0.05, 32.0);
        let mostly_good = r.region_psnr([(10.0, good), (1.0, bad)]);
        let mostly_bad = r.region_psnr([(1.0, good), (10.0, bad)]);
        assert!(mostly_good > mostly_bad);
    }

    #[test]
    fn bpp_for_psnr_inverts() {
        let r = rd();
        for target in [30.0, 35.0, 40.0] {
            let bpp = r.bpp_for_psnr(1.0, target);
            let achieved = r.tile_psnr(1.0, bpp, 1.0);
            assert!((achieved - target).abs() < 0.2, "target {target} got {achieved}");
        }
    }

    #[test]
    fn psnr_capped() {
        assert!(rd().tile_psnr(1.0, 100.0, 1.0) <= 55.0);
    }
}
