//! Viewer head-motion and ROI substrate.
//!
//! The paper's evaluation invites five users, each watching a different 360°
//! video so that ROI behaviour is not overfitted to one content (§6). The
//! HMD head tracker drives the ROI. We replace the humans with five
//! head-motion *archetypes* spanning the behaviour space that matters for
//! adaptive compression — how often the ROI moves, how far, and how fast —
//! while respecting the kinematics the paper cites from Oculus (§8): average
//! angular velocity ≈ 60°/s, acceleration up to 500°/s².
//!
//! * [`motion`] — the accelerating/decelerating gaze kinematics plus the
//!   archetype behaviours that feed it targets.
//! * [`predictor`] — the motion-based linear ROI predictor the paper
//!   discusses (and dismisses for LTE-scale latencies) in §8.

pub mod motion;
pub mod predictor;

pub use motion::{HeadMotion, MotionConfig, UserArchetype};
pub use predictor::LinearPredictor;
