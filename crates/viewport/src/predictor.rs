//! Motion-based ROI prediction (paper §8 discussion).
//!
//! The paper argues that linear head-motion prediction only works at short
//! horizons: with ~60°/s average velocity and accelerations up to 500°/s²,
//! "the head position after 120 ms is unpredictable, which is below the
//! typical video latency over LTE". This module implements the predictor so
//! the claim can be *measured* (see the `roi_prediction` ablation bench)
//! rather than assumed.

use poi360_video::frame::TileGrid;
use poi360_video::roi::Roi;

/// First-order (constant-velocity) gaze predictor with exponential velocity
/// smoothing, the standard HMD tracking baseline the paper cites.
#[derive(Clone, Debug)]
pub struct LinearPredictor {
    /// Velocity smoothing factor per update, in `(0, 1]`; 1 = no smoothing.
    pub alpha: f64,
    last: Option<(f64, f64)>, // (yaw, pitch)
    vel: (f64, f64),          // deg/s
    last_dt: f64,
}

impl Default for LinearPredictor {
    fn default() -> Self {
        LinearPredictor { alpha: 0.6, last: None, vel: (0.0, 0.0), last_dt: 0.0 }
    }
}

fn wrap_delta(d: f64) -> f64 {
    let mut d = d % 360.0;
    if d >= 180.0 {
        d -= 360.0;
    }
    if d < -180.0 {
        d += 360.0;
    }
    d
}

impl LinearPredictor {
    /// Create a predictor with the given smoothing factor.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        LinearPredictor { alpha, ..Default::default() }
    }

    /// Feed an observed head sample taken `dt_secs` after the previous one.
    pub fn observe(&mut self, yaw: f64, pitch: f64, dt_secs: f64) {
        if let Some((py, pp)) = self.last {
            if dt_secs > 0.0 {
                let vy = wrap_delta(yaw - py) / dt_secs;
                let vp = (pitch - pp) / dt_secs;
                self.vel.0 += self.alpha * (vy - self.vel.0);
                self.vel.1 += self.alpha * (vp - self.vel.1);
            }
        }
        self.last = Some((yaw, pitch));
        self.last_dt = dt_secs;
    }

    /// Predict the gaze `horizon_secs` ahead of the last observation.
    /// Returns `None` until at least one sample has been observed.
    pub fn predict(&self, horizon_secs: f64) -> Option<(f64, f64)> {
        let (yaw, pitch) = self.last?;
        Some((
            (yaw + self.vel.0 * horizon_secs).rem_euclid(360.0),
            (pitch + self.vel.1 * horizon_secs).clamp(-90.0, 90.0),
        ))
    }

    /// Predict the ROI tile `horizon_secs` ahead.
    pub fn predict_roi(&self, grid: &TileGrid, horizon_secs: f64) -> Option<Roi> {
        let (yaw, pitch) = self.predict(horizon_secs)?;
        Some(Roi::from_angles(grid, yaw, pitch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::{HeadMotion, MotionConfig, UserArchetype};
    use poi360_sim::time::SimDuration;

    #[test]
    fn needs_an_observation_first() {
        let p = LinearPredictor::default();
        assert!(p.predict(0.1).is_none());
    }

    #[test]
    fn constant_velocity_is_predicted_exactly() {
        let mut p = LinearPredictor::new(1.0);
        // 30 deg/s pure yaw motion.
        for k in 0..20 {
            p.observe((k as f64 * 0.3).rem_euclid(360.0), 0.0, 0.01);
        }
        let (yaw, _) = p.predict(0.5).unwrap();
        let expect = (19.0f64 * 0.3 + 15.0).rem_euclid(360.0);
        assert!((yaw - expect).abs() < 0.2, "yaw {yaw} expect {expect}");
    }

    #[test]
    fn handles_wraparound_velocity() {
        let mut p = LinearPredictor::new(1.0);
        // Crossing 360 -> 0 must not produce a -360 deg/s spike.
        p.observe(359.0, 0.0, 0.01);
        p.observe(1.0, 0.0, 0.01);
        let (yaw, _) = p.predict(0.01).unwrap();
        assert!((yaw - 3.0).abs() < 0.5, "yaw {yaw}");
    }

    /// Measure per-horizon tile-level hit rate on a saccadic user —
    /// the §8 claim: fine at ≤120 ms, unusable at LTE latency (~460 ms).
    fn hit_rate(horizon: f64) -> f64 {
        let grid = TileGrid::POI360;
        let dt = SimDuration::from_millis(10);
        let mut user = HeadMotion::new(UserArchetype::Saccadic, MotionConfig::default(), 5);
        let mut pred = LinearPredictor::default();
        let steps_ahead = (horizon / dt.as_secs_f64()).round() as usize;
        let mut history: Vec<Roi> = Vec::new();
        let mut predictions: Vec<Option<Roi>> = Vec::new();
        let total = 30_000usize;
        for _ in 0..total {
            user.step(dt);
            pred.observe(user.yaw(), user.pitch(), dt.as_secs_f64());
            history.push(user.roi(&grid));
            predictions.push(pred.predict_roi(&grid, horizon));
        }
        let mut hits = 0usize;
        let mut n = 0usize;
        for k in 0..total - steps_ahead {
            if let Some(p) = &predictions[k] {
                let actual = &history[k + steps_ahead];
                if grid.distance(p.center, actual.center) == 0 {
                    hits += 1;
                }
                n += 1;
            }
        }
        hits as f64 / n as f64
    }

    #[test]
    fn short_horizon_prediction_works() {
        let r = hit_rate(0.05);
        assert!(r > 0.8, "50 ms hit rate {r}");
    }

    #[test]
    fn lte_scale_horizon_prediction_degrades() {
        let short = hit_rate(0.05);
        let long = hit_rate(0.45);
        assert!(
            long < short - 0.15,
            "460 ms-scale prediction should be clearly worse: {long} vs {short}"
        );
    }
}
