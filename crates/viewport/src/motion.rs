//! Head-motion kinematics and user archetypes.
//!
//! The gaze is a second-order system: each archetype emits *targets*
//! (where the user wants to look next and how urgently), and the kinematic
//! integrator pursues the target under velocity and acceleration limits.
//! Yaw is cyclic; pitch is clamped to `[-75°, 75°]` (humans rarely stare at
//! the poles, and HMD straps physically resist it).

use poi360_sim::process::OrnsteinUhlenbeck;
use poi360_sim::rng::SimRng;
use poi360_sim::time::SimDuration;
use poi360_video::frame::TileGrid;
use poi360_video::roi::Roi;

/// Kinematic limits, defaults from the Oculus numbers cited in paper §8.
#[derive(Clone, Copy, Debug)]
pub struct MotionConfig {
    /// Maximum angular speed (deg/s).
    pub max_speed: f64,
    /// Maximum angular acceleration (deg/s²).
    pub max_accel: f64,
    /// Pitch excursion limit (deg).
    pub pitch_limit: f64,
    /// Standard deviation of involuntary head sway (deg). Humans cannot
    /// hold an HMD perfectly still; this is what makes rigid two-level
    /// schemes flicker whenever the gaze sits near a tile boundary.
    pub sway_std: f64,
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig { max_speed: 240.0, max_accel: 500.0, pitch_limit: 75.0, sway_std: 2.0 }
    }
}

/// The five user archetypes substituting for the paper's five participants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UserArchetype {
    /// Mostly still (video-chat posture); occasional glances that return to
    /// a home direction.
    Anchored,
    /// Continuous slow panoramic panning (sightseeing).
    SmoothPanner,
    /// Frequent large saccades to random directions (active explorer).
    Saccadic,
    /// Long dwells interrupted by urgent attention shifts (event watcher).
    EventDriven,
    /// Vehicle passenger: forward bias, lateral scanning, rare rear checks.
    Passenger,
}

impl UserArchetype {
    /// All five archetypes in a fixed order: "user 1" … "user 5".
    pub fn all() -> [UserArchetype; 5] {
        [
            UserArchetype::Anchored,
            UserArchetype::SmoothPanner,
            UserArchetype::Saccadic,
            UserArchetype::EventDriven,
            UserArchetype::Passenger,
        ]
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            UserArchetype::Anchored => "anchored",
            UserArchetype::SmoothPanner => "smooth-panner",
            UserArchetype::Saccadic => "saccadic",
            UserArchetype::EventDriven => "event-driven",
            UserArchetype::Passenger => "passenger",
        }
    }
}

/// Archetype behaviour state.
#[derive(Clone, Debug)]
enum Behaviour {
    Anchored {
        home_yaw: f64,
        glancing: bool,
        until: f64, // behaviour-clock seconds
    },
    SmoothPanner {
        rate_dps: f64, // current pan rate, slowly varying
    },
    Saccadic {
        next_saccade: f64,
    },
    EventDriven {
        next_event: f64,
    },
    Passenger {
        next_scan: f64,
    },
}

/// A simulated viewer's head.
#[derive(Clone, Debug)]
pub struct HeadMotion {
    cfg: MotionConfig,
    archetype: UserArchetype,
    behaviour: Behaviour,
    rng: SimRng,
    /// Behaviour clock in seconds since start.
    clock: f64,
    yaw: f64,
    pitch: f64,
    yaw_vel: f64,
    pitch_vel: f64,
    target_yaw: f64,
    target_pitch: f64,
    sway_yaw: OrnsteinUhlenbeck,
    sway_pitch: OrnsteinUhlenbeck,
}

fn wrap_delta(d: f64) -> f64 {
    let mut d = d % 360.0;
    if d >= 180.0 {
        d -= 360.0;
    }
    if d < -180.0 {
        d += 360.0;
    }
    d
}

impl HeadMotion {
    /// Create a viewer of the given archetype, gazing straight ahead.
    pub fn new(archetype: UserArchetype, cfg: MotionConfig, seed: u64) -> Self {
        let mut rng = SimRng::stream(seed, "viewport.motion");
        let behaviour = match archetype {
            UserArchetype::Anchored => Behaviour::Anchored {
                home_yaw: 180.0,
                glancing: false,
                until: 2.0 + rng.exponential(6.0),
            },
            UserArchetype::SmoothPanner => Behaviour::SmoothPanner { rate_dps: 25.0 },
            UserArchetype::Saccadic => {
                Behaviour::Saccadic { next_saccade: rng.uniform_range(0.5, 2.0) }
            }
            UserArchetype::EventDriven => {
                Behaviour::EventDriven { next_event: 2.0 + rng.exponential(4.0) }
            }
            UserArchetype::Passenger => {
                Behaviour::Passenger { next_scan: rng.uniform_range(1.0, 4.0) }
            }
        };
        HeadMotion {
            sway_yaw: OrnsteinUhlenbeck::with_stationary(0.0, cfg.sway_std, 0.8),
            sway_pitch: OrnsteinUhlenbeck::with_stationary(0.0, cfg.sway_std * 0.6, 0.8),
            cfg,
            archetype,
            behaviour,
            rng,
            clock: 0.0,
            yaw: 180.0,
            pitch: 0.0,
            yaw_vel: 0.0,
            pitch_vel: 0.0,
            target_yaw: 180.0,
            target_pitch: 0.0,
        }
    }

    /// The five paper users: one per archetype, decorrelated by seed.
    pub fn paper_users(seed: u64) -> Vec<HeadMotion> {
        UserArchetype::all()
            .iter()
            .enumerate()
            .map(|(k, &a)| {
                HeadMotion::new(a, MotionConfig::default(), seed ^ ((k as u64 + 1) << 32))
            })
            .collect()
    }

    /// Which archetype this viewer plays.
    pub fn archetype(&self) -> UserArchetype {
        self.archetype
    }

    /// Current gaze yaw in `[0, 360)`, including involuntary sway.
    pub fn yaw(&self) -> f64 {
        (self.yaw + self.sway_yaw.value()).rem_euclid(360.0)
    }

    /// Current gaze pitch, including involuntary sway.
    pub fn pitch(&self) -> f64 {
        (self.pitch + self.sway_pitch.value()).clamp(-self.cfg.pitch_limit, self.cfg.pitch_limit)
    }

    /// Current angular speed (deg/s) combining both axes.
    pub fn speed(&self) -> f64 {
        (self.yaw_vel.powi(2) + self.pitch_vel.powi(2)).sqrt()
    }

    /// Current ROI on a tile grid.
    pub fn roi(&self, grid: &TileGrid) -> Roi {
        Roi::from_angles(grid, self.yaw(), self.pitch())
    }

    /// Advance behaviour and kinematics by `dt`.
    pub fn step(&mut self, dt: SimDuration) {
        self.sway_yaw.step(dt, &mut self.rng);
        self.sway_pitch.step(dt, &mut self.rng);
        let dt = dt.as_secs_f64();
        self.clock += dt;
        self.update_behaviour();
        self.integrate_axis(dt, true);
        self.integrate_axis(dt, false);
        self.yaw = self.yaw.rem_euclid(360.0);
        self.pitch = self.pitch.clamp(-self.cfg.pitch_limit, self.cfg.pitch_limit);
    }

    fn update_behaviour(&mut self) {
        let clock = self.clock;
        match &mut self.behaviour {
            Behaviour::Anchored { home_yaw, glancing, until } => {
                if clock >= *until {
                    if *glancing {
                        // Glance over; return home.
                        self.target_yaw = *home_yaw;
                        self.target_pitch = 0.0;
                        *glancing = false;
                        *until = clock + 3.0 + self.rng.exponential(7.0);
                    } else {
                        // Glance at something off to the side.
                        let offset = self.rng.uniform_range(35.0, 130.0)
                            * if self.rng.chance(0.5) { 1.0 } else { -1.0 };
                        self.target_yaw = (*home_yaw + offset).rem_euclid(360.0);
                        self.target_pitch = self.rng.uniform_range(-20.0, 25.0);
                        *glancing = true;
                        *until = clock + self.rng.uniform_range(0.8, 2.5);
                    }
                }
            }
            Behaviour::SmoothPanner { rate_dps } => {
                // Slowly varying pan rate; target stays ahead of the gaze.
                *rate_dps += self.rng.gaussian() * 0.4;
                *rate_dps = rate_dps.clamp(10.0, 45.0);
                self.target_yaw = (self.yaw + *rate_dps * 0.5).rem_euclid(360.0);
                self.target_pitch =
                    (self.target_pitch + self.rng.gaussian() * 0.2).clamp(-15.0, 15.0);
            }
            Behaviour::Saccadic { next_saccade } => {
                if clock >= *next_saccade {
                    self.target_yaw = self.rng.uniform_range(0.0, 360.0);
                    self.target_pitch = self.rng.uniform_range(-35.0, 35.0);
                    *next_saccade = clock + self.rng.uniform_range(0.8, 2.5);
                }
            }
            Behaviour::EventDriven { next_event } => {
                if clock >= *next_event {
                    // An event somewhere else in the scene demands attention.
                    let jump = self.rng.uniform_range(60.0, 180.0)
                        * if self.rng.chance(0.5) { 1.0 } else { -1.0 };
                    self.target_yaw = (self.yaw + jump).rem_euclid(360.0);
                    self.target_pitch = self.rng.uniform_range(-25.0, 25.0);
                    *next_event = clock + 2.0 + self.rng.exponential(4.0);
                }
            }
            Behaviour::Passenger { next_scan } => {
                if clock >= *next_scan {
                    if self.rng.chance(0.12) {
                        // Rear check.
                        self.target_yaw = self.rng.uniform_range(-30.0, 30.0).rem_euclid(360.0);
                        *next_scan = clock + self.rng.uniform_range(0.8, 1.5);
                    } else {
                        // Scan the forward hemisphere.
                        self.target_yaw =
                            (180.0 + self.rng.uniform_range(-80.0, 80.0)).rem_euclid(360.0);
                        *next_scan = clock + self.rng.uniform_range(1.5, 5.0);
                    }
                    self.target_pitch = self.rng.uniform_range(-15.0, 10.0);
                }
            }
        }
    }

    /// Accel-limited pursuit of the target on one axis.
    fn integrate_axis(&mut self, dt: f64, is_yaw: bool) {
        let (pos, vel, target) = if is_yaw {
            (self.yaw, self.yaw_vel, self.target_yaw)
        } else {
            (self.pitch, self.pitch_vel, self.target_pitch)
        };
        let err = if is_yaw { wrap_delta(target - pos) } else { target - pos };

        // Desired speed: proportional to error, but low enough that the
        // deceleration phase (bounded by max_accel) can stop at the target:
        // v_max_for_stop = sqrt(2 * a * |err|).
        let stop_speed = (2.0 * self.cfg.max_accel * err.abs()).sqrt();
        let desired = err.signum() * stop_speed.min(self.cfg.max_speed);

        let dv = (desired - vel).clamp(-self.cfg.max_accel * dt, self.cfg.max_accel * dt);
        let new_vel = vel + dv;
        let new_pos = pos + new_vel * dt;

        if is_yaw {
            self.yaw_vel = new_vel;
            self.yaw = new_pos;
        } else {
            self.pitch_vel = new_vel;
            self.pitch = new_pos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_millis(10);

    fn run(archetype: UserArchetype, secs: f64, seed: u64) -> (HeadMotion, Vec<(f64, f64, f64)>) {
        let mut m = HeadMotion::new(archetype, MotionConfig::default(), seed);
        let steps = (secs / DT.as_secs_f64()) as usize;
        let mut trace = Vec::with_capacity(steps);
        for _ in 0..steps {
            m.step(DT);
            trace.push((m.yaw(), m.pitch(), m.speed()));
        }
        (m, trace)
    }

    #[test]
    fn respects_speed_limit() {
        for a in UserArchetype::all() {
            let (_, trace) = run(a, 60.0, 11);
            let max = trace.iter().map(|t| t.2).fold(0.0, f64::max);
            // The limit applies per axis; the two-axis norm can slightly
            // exceed it when both axes move.
            assert!(max <= 240.0 * 1.42, "{a:?} speed {max}");
        }
    }

    #[test]
    fn respects_accel_limit() {
        for a in UserArchetype::all() {
            let (_, trace) = run(a, 30.0, 13);
            for w in trace.windows(2) {
                let dv = (w[1].2 - w[0].2).abs();
                assert!(dv <= 500.0 * DT.as_secs_f64() * 2.0 + 1e-6, "{a:?} accel {dv}");
            }
        }
    }

    #[test]
    fn pitch_stays_in_band() {
        for a in UserArchetype::all() {
            let (_, trace) = run(a, 60.0, 17);
            for t in &trace {
                assert!(t.1.abs() <= 75.0 + 1e-9, "{a:?} pitch {}", t.1);
            }
        }
    }

    #[test]
    fn yaw_normalized() {
        let (_, trace) = run(UserArchetype::Saccadic, 60.0, 19);
        for t in &trace {
            assert!((0.0..360.0).contains(&t.0), "yaw {}", t.0);
        }
    }

    #[test]
    fn saccadic_moves_more_than_anchored() {
        let moved = |a| -> f64 {
            let (_, trace) = run(a, 120.0, 23);
            trace.iter().map(|t| t.2 * DT.as_secs_f64()).sum()
        };
        let anchored = moved(UserArchetype::Anchored);
        let saccadic = moved(UserArchetype::Saccadic);
        assert!(saccadic > anchored * 2.0, "saccadic {saccadic} anchored {anchored}");
    }

    #[test]
    fn panner_covers_the_full_circle() {
        let grid = TileGrid::POI360;
        let mut m = HeadMotion::new(UserArchetype::SmoothPanner, MotionConfig::default(), 29);
        let mut cols = std::collections::HashSet::new();
        for _ in 0..6_000 {
            m.step(DT);
            cols.insert(m.roi(&grid).center.i);
        }
        assert_eq!(cols.len(), 12, "panner should visit all columns: {cols:?}");
    }

    #[test]
    fn anchored_returns_home() {
        let (_, trace) = run(UserArchetype::Anchored, 240.0, 31);
        // Most of the time the anchored user looks near home (180°).
        let near_home = trace.iter().filter(|t| wrap_delta(t.0 - 180.0).abs() < 35.0).count()
            as f64
            / trace.len() as f64;
        assert!(near_home > 0.5, "near-home fraction {near_home}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = run(UserArchetype::EventDriven, 20.0, 37);
        let (_, b) = run(UserArchetype::EventDriven, 20.0, 37);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_decorrelate() {
        let (_, a) = run(UserArchetype::EventDriven, 20.0, 1);
        let (_, b) = run(UserArchetype::EventDriven, 20.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn paper_users_are_five_distinct_archetypes() {
        let users = HeadMotion::paper_users(99);
        assert_eq!(users.len(), 5);
        let set: std::collections::HashSet<_> = users.iter().map(|u| u.archetype()).collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn average_speed_in_plausible_human_range() {
        // Paper §8 cites ~60 deg/s average head velocity; the archetype
        // ensemble should land in a loosely human band.
        let mut total = 0.0;
        let mut n = 0usize;
        for a in UserArchetype::all() {
            let (_, trace) = run(a, 120.0, 41);
            total += trace.iter().map(|t| t.2).sum::<f64>();
            n += trace.len();
        }
        let avg = total / n as f64;
        assert!((5.0..120.0).contains(&avg), "ensemble average speed {avg}");
    }

    #[test]
    fn wrap_delta_is_shortest_path() {
        assert_eq!(wrap_delta(350.0), -10.0);
        assert_eq!(wrap_delta(-350.0), 10.0);
        assert_eq!(wrap_delta(180.0), -180.0);
        assert_eq!(wrap_delta(0.0), 0.0);
    }
}
