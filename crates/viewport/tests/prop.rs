//! Property-based tests for the viewport substrate.

use poi360_sim::time::SimDuration;
use poi360_video::frame::TileGrid;
use poi360_viewport::motion::{HeadMotion, MotionConfig, UserArchetype};
use poi360_viewport::predictor::LinearPredictor;
use proptest::prelude::*;

fn archetype(idx: usize) -> UserArchetype {
    UserArchetype::all()[idx % 5]
}

proptest! {
    /// Head state is always physical: yaw in [0,360), pitch within limits,
    /// for any archetype, seed, and step pattern.
    #[test]
    fn head_state_always_physical(
        arch in 0usize..5,
        seed in any::<u64>(),
        steps in prop::collection::vec(1u64..100, 1..200),
    ) {
        let cfg = MotionConfig::default();
        let mut head = HeadMotion::new(archetype(arch), cfg, seed);
        for ms in steps {
            head.step(SimDuration::from_millis(ms));
            prop_assert!((0.0..360.0).contains(&head.yaw()), "yaw {}", head.yaw());
            prop_assert!(head.pitch().abs() <= cfg.pitch_limit + 1e-9, "pitch {}", head.pitch());
            prop_assert!(head.speed().is_finite());
        }
    }

    /// The derived ROI always lies on the grid.
    #[test]
    fn roi_always_on_grid(arch in 0usize..5, seed in any::<u64>()) {
        let grid = TileGrid::POI360;
        let mut head = HeadMotion::new(archetype(arch), MotionConfig::default(), seed);
        for _ in 0..500 {
            head.step(SimDuration::from_millis(10));
            let roi = head.roi(&grid);
            prop_assert!(roi.center.i < grid.cols);
            prop_assert!(roi.center.j < grid.rows);
        }
    }

    /// The predictor's output is always a valid gaze direction.
    #[test]
    fn predictions_valid(observations in prop::collection::vec((-720f64..720.0, -90f64..90.0), 2..50)) {
        let mut pred = LinearPredictor::default();
        for (yaw, pitch) in observations {
            pred.observe(yaw.rem_euclid(360.0), pitch, 0.01);
        }
        for horizon in [0.05, 0.12, 0.46, 2.0] {
            let (yaw, pitch) = pred.predict(horizon).expect("observed");
            prop_assert!((0.0..360.0).contains(&yaw));
            prop_assert!((-90.0..=90.0).contains(&pitch));
        }
    }

    /// Motion is exactly reproducible from a seed.
    #[test]
    fn motion_reproducible(arch in 0usize..5, seed in any::<u64>()) {
        let run = || {
            let mut h = HeadMotion::new(archetype(arch), MotionConfig::default(), seed);
            (0..100)
                .map(|_| {
                    h.step(SimDuration::from_millis(10));
                    (h.yaw(), h.pitch())
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
