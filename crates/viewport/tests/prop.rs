//! Property-based tests for the viewport substrate, on the in-repo
//! `poi360_testkit` harness (64+ seeded cases per property).

use poi360_sim::time::SimDuration;
use poi360_testkit::{prop_assert, prop_assert_eq, prop_check};
use poi360_video::frame::TileGrid;
use poi360_viewport::motion::{HeadMotion, MotionConfig, UserArchetype};
use poi360_viewport::predictor::LinearPredictor;

fn archetype(idx: usize) -> UserArchetype {
    UserArchetype::all()[idx % 5]
}

/// Head state is always physical: yaw in [0,360), pitch within limits,
/// for any archetype, seed, and step pattern.
#[test]
fn head_state_always_physical() {
    prop_check!(64, |g| {
        let arch = g.usize_in(0, 4);
        let seed = g.any_u64();
        let steps = g.vec_u64(1, 200, 1, 99);
        let cfg = MotionConfig::default();
        let mut head = HeadMotion::new(archetype(arch), cfg, seed);
        for ms in steps {
            head.step(SimDuration::from_millis(ms));
            prop_assert!((0.0..360.0).contains(&head.yaw()), "yaw {}", head.yaw());
            prop_assert!(head.pitch().abs() <= cfg.pitch_limit + 1e-9, "pitch {}", head.pitch());
            prop_assert!(head.speed().is_finite());
        }
        Ok(())
    });
}

/// The derived ROI always lies on the grid.
#[test]
fn roi_always_on_grid() {
    prop_check!(64, |g| {
        let arch = g.usize_in(0, 4);
        let seed = g.any_u64();
        let grid = TileGrid::POI360;
        let mut head = HeadMotion::new(archetype(arch), MotionConfig::default(), seed);
        for _ in 0..500 {
            head.step(SimDuration::from_millis(10));
            let roi = head.roi(&grid);
            prop_assert!(roi.center.i < grid.cols);
            prop_assert!(roi.center.j < grid.rows);
        }
        Ok(())
    });
}

/// The predictor's output is always a valid gaze direction.
#[test]
fn predictions_valid() {
    prop_check!(64, |g| {
        let observations = g.vec_of(2, 50, |g| (g.f64_in(-720.0, 720.0), g.f64_in(-90.0, 90.0)));
        let mut pred = LinearPredictor::default();
        for (yaw, pitch) in observations {
            pred.observe(yaw.rem_euclid(360.0), pitch, 0.01);
        }
        for horizon in [0.05, 0.12, 0.46, 2.0] {
            let (yaw, pitch) = pred.predict(horizon).expect("observed");
            prop_assert!((0.0..360.0).contains(&yaw));
            prop_assert!((-90.0..=90.0).contains(&pitch));
        }
        Ok(())
    });
}

/// Motion is exactly reproducible from a seed.
#[test]
fn motion_reproducible() {
    prop_check!(64, |g| {
        let arch = g.usize_in(0, 4);
        let seed = g.any_u64();
        let run = || {
            let mut h = HeadMotion::new(archetype(arch), MotionConfig::default(), seed);
            (0..100)
                .map(|_| {
                    h.step(SimDuration::from_millis(10));
                    (h.yaw(), h.pitch())
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
        Ok(())
    });
}
