//! Quickstart: run one POI360 telephony session over a simulated LTE
//! uplink and print the session summary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the smallest end-to-end use of the public API: configure a
//! session, run it, and read the measurement record.

use poi360::core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360::core::session::Session;
use poi360::lte::scenario::Scenario;
use poi360::metrics::mos::Mos;
use poi360::sim::time::SimDuration;
use poi360::viewport::motion::UserArchetype;

fn main() {
    // The full POI360 system: adaptive spatial compression + FBCC rate
    // control, on a typical cell with strong signal, with an
    // "event-watcher" viewer wearing the HMD.
    let cfg = SessionConfig {
        scheme: CompressionScheme::Poi360,
        rate_control: RateControlKind::Fbcc,
        network: NetworkKind::Cellular(Scenario::baseline()),
        user: UserArchetype::EventDriven,
        duration: SimDuration::from_secs(30),
        seed: 42,
        ..Default::default()
    };
    println!("running: {}", cfg.label());

    let report = Session::new(cfg).run();

    println!();
    println!("frames sent       : {}", report.frames_sent);
    println!("frames delivered  : {}", report.frames_delivered);
    println!("frames lost       : {}", report.frames_lost);
    println!("median frame delay: {:.0} ms", report.median_delay_ms());
    println!("freeze ratio      : {:.2}%", report.freeze_ratio() * 100.0);
    println!("mean ROI PSNR     : {:.1} dB", report.mean_psnr_db());
    println!("mean throughput   : {:.2} Mbps", report.mean_throughput_bps() / 1e6);
    println!("uplink detections : {}", report.uplink_detections);

    let mos = report.mos();
    println!();
    println!("user-perceived quality (MOS PDF):");
    for band in Mos::all() {
        println!("  {:9} {:5.1}%", band.label(), mos.fraction(band) * 100.0);
    }

    // Basic sanity for anyone extending this example.
    assert!(report.frames_delivered > 0, "session must deliver frames");
}
