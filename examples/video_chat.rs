//! 360° video chat: the paper's headline application (§1), comparing the
//! three spatial-compression schemes on the same cellular link and viewer.
//!
//! ```text
//! cargo run --release --example video_chat
//! ```
//!
//! An anchored viewer (video-chat posture: mostly still, occasional
//! glances) talks over a typical LTE cell. The example runs POI360,
//! Conduit, and Pyramid on identical seeds and prints a side-by-side
//! comparison — a miniature of the paper's Fig. 11–14 micro-benchmark.

use poi360::core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360::core::session::Session;
use poi360::lte::scenario::Scenario;
use poi360::metrics::table::{fnum, mbps, pct, Table};
use poi360::sim::time::SimDuration;
use poi360::viewport::motion::UserArchetype;

fn main() {
    let mut table = Table::new(
        "360-degree video chat over LTE: compression schemes compared",
        &["Scheme", "PSNR (dB)", "PSNR std", "Median delay (ms)", "Freeze", "Tput (Mbps)"],
    );

    for scheme in CompressionScheme::all() {
        // Same seed for every scheme: identical channel, load, and viewer.
        let cfg = SessionConfig {
            scheme,
            rate_control: RateControlKind::Gcc, // isolate compression, as §6.1.1 does
            network: NetworkKind::Cellular(Scenario::baseline()),
            user: UserArchetype::Anchored,
            duration: SimDuration::from_secs(60),
            seed: 7,
            ..Default::default()
        };
        eprintln!("running {} ...", cfg.label());
        let report = Session::new(cfg).run();
        table.row(vec![
            scheme.label().into(),
            fnum(report.mean_psnr_db(), 1),
            fnum(report.psnr_std_db(), 1),
            fnum(report.median_delay_ms(), 0),
            pct(report.freeze_ratio()),
            mbps(report.mean_throughput_bps()),
        ]);
    }

    println!("{}", table.render());
    println!(
        "POI360 should show the most stable quality (lowest PSNR std) —\n\
         the rigid schemes flicker whenever the viewer glances around."
    );
}
