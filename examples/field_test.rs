//! Field test: sweep the paper's §6.2 conditions — background load, signal
//! strength, and mobility — with the full POI360 system, like the paper's
//! campus/garage/highway campaign.
//!
//! ```text
//! cargo run --release --example field_test
//! cargo run --release --example field_test -- 120   # longer sessions
//! ```

use poi360::core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360::core::session::Session;
use poi360::lte::scenario::Scenario;
use poi360::metrics::mos::Mos;
use poi360::metrics::table::{fnum, pct, Table};
use poi360::sim::time::SimDuration;
use poi360::viewport::motion::UserArchetype;

fn main() {
    let secs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(45);

    let conditions: Vec<Scenario> = Scenario::load_sweep()
        .into_iter()
        .chain(Scenario::signal_sweep())
        .chain(Scenario::mobility_sweep())
        .collect();

    let mut table = Table::new(
        format!("POI360 field test ({secs}s per condition, event-driven viewer)"),
        &["Condition", "PSNR (dB)", "Freeze", "Good+", "Median delay (ms)"],
    );

    for scenario in conditions {
        let cfg = SessionConfig {
            scheme: CompressionScheme::Poi360,
            rate_control: RateControlKind::Fbcc,
            network: NetworkKind::Cellular(scenario),
            user: UserArchetype::EventDriven,
            duration: SimDuration::from_secs(secs),
            seed: 17,
            ..Default::default()
        };
        eprintln!("running {} ...", scenario.label());
        let report = Session::new(cfg).run();
        let mos = report.mos();
        table.row(vec![
            scenario.label(),
            fnum(report.mean_psnr_db(), 1),
            pct(report.freeze_ratio()),
            pct(mos.fraction(Mos::Good) + mos.fraction(Mos::Excellent)),
            fnum(report.median_delay_ms(), 0),
        ]);
    }

    println!("{}", table.render());
    println!(
        "Expected shape (paper Fig. 17): busy cells and weak signal cost\n\
         quality while freezes stay bounded; driving speed erodes quality\n\
         as FBCC absorbs handover outages (see EXPERIMENTS.md, D7)."
    );
}
