//! Virtual 360° cockpit (paper Fig. 1): a drone or vehicle streams live
//! panoramic video over LTE while the remote pilot looks around.
//!
//! ```text
//! cargo run --release --example drone_cockpit
//! ```
//!
//! The platform drives at highway speed (handovers, fast fading), the
//! viewer behaves like a vehicle passenger (forward bias, lateral scans),
//! and we compare POI360's FBCC against stock GCC — the situation where
//! cellular-aware rate control matters most.

use poi360::core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360::core::session::Session;
use poi360::lte::scenario::{BackgroundLoad, Mobility, Scenario, SignalStrength};
use poi360::metrics::table::{fnum, mbps, pct, Table};
use poi360::sim::time::SimDuration;
use poi360::viewport::motion::UserArchetype;

fn main() {
    let highway = Scenario {
        load: BackgroundLoad::Idle,
        signal: SignalStrength::Highway,
        mobility: Mobility::Mph50,
    };

    let mut table = Table::new(
        "virtual cockpit at 50 mph: FBCC vs stock GCC",
        &[
            "Rate control",
            "PSNR (dB)",
            "Median delay (ms)",
            "Freeze",
            "Tput (Mbps)",
            "Uplink detections",
        ],
    );

    for rc in [RateControlKind::Fbcc, RateControlKind::Gcc] {
        let cfg = SessionConfig {
            scheme: CompressionScheme::Poi360,
            rate_control: rc,
            network: NetworkKind::Cellular(highway),
            user: UserArchetype::Passenger,
            duration: SimDuration::from_secs(90),
            seed: 360,
            ..Default::default()
        };
        eprintln!("running {} ...", cfg.label());
        let report = Session::new(cfg).run();
        table.row(vec![
            rc.label().into(),
            fnum(report.mean_psnr_db(), 1),
            fnum(report.median_delay_ms(), 0),
            pct(report.freeze_ratio()),
            mbps(report.mean_throughput_bps()),
            report.uplink_detections.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!(
        "FBCC reads the modem's firmware buffer directly, so it reacts to\n\
         handover outages and fading dips without waiting a cellular RTT."
    );
}
